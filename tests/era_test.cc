#include <gtest/gtest.h>

#include "era/constraint_graph.h"
#include "era/emptiness.h"
#include "era/extended_automaton.h"
#include "era/ltlfo.h"
#include "era/prop6.h"
#include "era/run_check.h"
#include "ra/simulate.h"
#include "ra/transform.h"
#include "test_util.h"

namespace rav {
namespace {

using testing::MakeAllDistinct;
using testing::MakeExample1;
using testing::MakeExample5;

// --- Example 5: the ERA capturing Π₁ of Example 1 ---

TEST(EraTest, Example5ConstraintParses) {
  ExtendedAutomaton era = MakeExample5();
  ASSERT_EQ(era.constraints().size(), 1u);
  EXPECT_TRUE(era.constraints()[0].is_equality);
  // The DFA accepts exactly p1 p2^* p1.
  const Dfa& dfa = era.constraints()[0].dfa;
  StateId p1 = era.automaton().FindState("p1");
  StateId p2 = era.automaton().FindState("p2");
  EXPECT_TRUE(dfa.Accepts({p1.value(), p1.value()}));
  EXPECT_TRUE(dfa.Accepts({p1.value(), p2.value(), p2.value(), p1.value()}));
  EXPECT_FALSE(dfa.Accepts({p1.value()}));
  EXPECT_FALSE(dfa.Accepts({p2.value(), p1.value()}));
}

FiniteRun Example5Run(bool satisfy) {
  // p1 p2 p2 p1 p2 p1 with register values: value at each p1 must be the
  // same (here 7); intermediate p2 values arbitrary.
  FiniteRun run;
  DataValue at_p1 = 7;
  run.values = {{at_p1}, {3}, {4}, {satisfy ? at_p1 : 8}, {5}, {at_p1}};
  run.states = testing::StateIds({0, 1, 1, 0, 1, 0});
  run.transition_indices = {0, 1, 2, 0, 2};
  return run;
}

TEST(EraTest, Example5RunChecking) {
  ExtendedAutomaton era = MakeExample5();
  Database db{Schema()};
  FiniteRun good = Example5Run(true);
  EXPECT_TRUE(ValidateEraRunPrefix(era, db, good).ok());
  FiniteRun bad = Example5Run(false);
  EXPECT_FALSE(CheckFiniteRunConstraints(era, bad).ok());
}

TEST(EraTest, LassoRunConstraintChecking) {
  ExtendedAutomaton era = MakeExample5();
  Database db{Schema()};
  // Cycle p1 p2: value at p1 always 7 — satisfied.
  LassoRun lasso;
  lasso.spine.values = {{7}, {3}};
  lasso.spine.states = testing::StateIds({0, 1});
  lasso.spine.transition_indices = {0};
  lasso.cycle_start = 0;
  lasso.wrap_transition_index = 2;  // p2 -> p1
  EXPECT_TRUE(ValidateEraLassoRun(era, db, lasso).ok());
  // Now a cycle where consecutive p1 values differ: the constraint
  // relates p1 ... p1 across the cycle boundary and must fail.
  LassoRun bad;
  bad.spine.values = {{7}, {3}, {9}, {4}};
  bad.spine.states = testing::StateIds({0, 1, 0, 1});
  bad.spine.transition_indices = {0, 2, 0};
  bad.cycle_start = 0;
  bad.wrap_transition_index = 2;
  EXPECT_FALSE(CheckLassoRunConstraints(era, bad).ok());
}

// --- Example 7: all-distinct ---

TEST(EraTest, AllDistinctRunChecking) {
  ExtendedAutomaton era = MakeAllDistinct();
  Database db{Schema()};
  FiniteRun distinct;
  distinct.values = {{1}, {2}, {3}, {4}};
  distinct.states = testing::StateIds({0, 0, 0, 0});
  distinct.transition_indices = {0, 0, 0};
  EXPECT_TRUE(ValidateEraRunPrefix(era, db, distinct).ok());
  FiniteRun repeat = distinct;
  repeat.values[3] = {1};
  EXPECT_FALSE(CheckFiniteRunConstraints(era, repeat).ok());
}

// --- Constraint closure ---

TEST(ConstraintClosureTest, Example5ClosureMergesP1Positions) {
  ExtendedAutomaton era = MakeExample5();
  ControlAlphabet alpha(era.automaton());
  // Control word: (p1,δ)(p2,δ)(p2,δ) cycling — states p1 p2 p2 p1 p2 p2...
  int s_p1 = alpha.SymbolOfTransition(0).value();
  int s_p2_loop = alpha.SymbolOfTransition(1).value();
  int s_p2_exit = alpha.SymbolOfTransition(2).value();
  LassoWord w{{}, {s_p1, s_p2_loop, s_p2_exit}};
  ConstraintClosure closure(era, alpha, w, 9);
  EXPECT_TRUE(closure.consistent());
  // Positions 0, 3, 6 are the p1 positions: all merged.
  EXPECT_EQ(closure.ClassOf(closure.NodeOf(0, 0)),
            closure.ClassOf(closure.NodeOf(3, 0)));
  EXPECT_EQ(closure.ClassOf(closure.NodeOf(0, 0)),
            closure.ClassOf(closure.NodeOf(6, 0)));
  // p2 positions are unconstrained.
  EXPECT_NE(closure.ClassOf(closure.NodeOf(1, 0)),
            closure.ClassOf(closure.NodeOf(2, 0)));
}

TEST(ConstraintClosureTest, InconsistencyDetected) {
  // Same automaton shape as Example 5 but with BOTH an equality and an
  // inequality constraint on the p1 positions.
  ExtendedAutomaton era = MakeExample5();
  ASSERT_TRUE(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                        /*is_equality=*/false, "p1 p2* p1")
                  .ok());
  ControlAlphabet alpha(era.automaton());
  LassoWord w{{}, {alpha.SymbolOfTransition(0).value(),
                   alpha.SymbolOfTransition(2).value()}};
  ConstraintClosure closure(era, alpha, w, 8);
  EXPECT_FALSE(closure.consistent());
}

TEST(ConstraintClosureTest, CliqueOfAllDistinctAdomGrows) {
  // Example 8 skeleton: one register always in unary P (adom), all values
  // distinct: the adom inequality clique grows with the window.
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.X(0)}, true).AddAtom(p, {b.Y(0)}, true);
  a.AddTransition(q, b.Build().value(), q);
  ExtendedAutomaton era(std::move(a));
  ASSERT_TRUE(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                        false, "q q+")
                  .ok());

  ControlAlphabet alpha(era.automaton());
  LassoWord w{{}, {alpha.SymbolOfTransition(0).value()}};
  ConstraintClosure c4(era, alpha, w, 4);
  ConstraintClosure c6(era, alpha, w, 6);
  EXPECT_TRUE(c4.consistent());
  EXPECT_GT(c6.AdomCliqueNumber(), c4.AdomCliqueNumber());
}

TEST(ConstraintClosureTest, GreedyColoringIsProper) {
  ExtendedAutomaton era = MakeAllDistinct();
  ControlAlphabet alpha(era.automaton());
  LassoWord w{{}, {alpha.SymbolOfTransition(0).value()}};
  ConstraintClosure closure(era, alpha, w, 6);
  int num_colors = 0;
  std::vector<int> colors = closure.GreedyAdomColoring(&num_colors);
  for (const auto& [c1, c2] : closure.AdomInequalityEdges()) {
    EXPECT_NE(colors[c1], colors[c2]);
  }
}

// --- Emptiness (Corollary 10) ---

TEST(EraEmptinessTest, Example5IsNonempty) {
  ExtendedAutomaton era = MakeExample5();
  RegisterAutomaton completed = Completed(era.automaton()).value();
  ExtendedAutomaton complete_era(std::move(completed));
  for (const GlobalConstraint& c : era.constraints()) {
    ASSERT_TRUE(complete_era
                    .AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality,
                                      c.dfa, c.description)
                    .ok());
  }
  ControlAlphabet alpha(complete_era.automaton());
  auto result = CheckEraEmptiness(complete_era, alpha);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->nonempty);
  // The witness realizes into a concrete constraint-satisfying run.
  auto witness = RealizeEraWitness(complete_era, alpha, result->control_word,
                                   10);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(
      ValidateEraRunPrefix(complete_era, witness->db, witness->run, false)
          .ok());
}

TEST(EraEmptinessTest, ContradictoryConstraintsEmpty) {
  // Equality and inequality on the same factor: every candidate lasso is
  // inconsistent.
  ExtendedAutomaton era = MakeExample5();
  ASSERT_TRUE(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                        /*is_equality=*/false, "p1 p2* p1")
                  .ok());
  RegisterAutomaton completed = Completed(era.automaton()).value();
  ExtendedAutomaton complete_era(std::move(completed));
  for (const GlobalConstraint& c : era.constraints()) {
    ASSERT_TRUE(complete_era
                    .AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality,
                                      c.dfa, c.description)
                    .ok());
  }
  ControlAlphabet alpha(complete_era.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = 8;
  options.max_lassos = 500;
  auto result = CheckEraEmptiness(complete_era, alpha, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
}

TEST(EraEmptinessTest, Example8RejectedOverFiniteDatabases) {
  // One register always in P, all values distinct: runs would need an
  // infinite database; the clique-growth guard must reject every lasso.
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.X(0)}, true).AddAtom(p, {b.Y(0)}, true);
  a.AddTransition(q, b.Build().value(), q);
  RegisterAutomaton completed = Completed(a).value();
  ExtendedAutomaton era(std::move(completed));
  ASSERT_TRUE(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                        false, "q q+")
                  .ok());
  ControlAlphabet alpha(era.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = 6;
  options.max_lassos = 200;
  auto result = CheckEraEmptiness(era, alpha, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
}

// --- Proposition 6 ---

TEST(Prop6Test, EliminatesEqualityConstraints) {
  ExtendedAutomaton era = MakeExample5();
  Prop6Stats stats;
  auto b = EliminateEqualityConstraints(era, &stats);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_FALSE(b->has_equality_constraints());
  EXPECT_GT(stats.registers_after, stats.registers_before);
  // Projections of B's valid finite runs are runs of A and vice versa:
  // spot-check by validating that B has runs at all and that its guards
  // enforce the p1-value equality.
  EXPECT_GT(b->automaton().num_states(), 0);
}

TEST(Prop6Test, ResultEnforcesOriginalEqualityConstraint) {
  // Build B from Example 5 and check: any valid B-run projected to
  // register 1 satisfies the original p1-equality constraint.
  ExtendedAutomaton era = MakeExample5();
  auto b_result = EliminateEqualityConstraints(era);
  ASSERT_TRUE(b_result.ok());
  const ExtendedAutomaton& b = *b_result;
  Database db{Schema()};
  // Enumerate B-runs of length 4 over a small pool; check the original
  // constraint on the projected run.
  size_t checked = 0;
  EnumerateRuns(b.automaton(), db, 4, {1, 2}, [&](const FiniteRun& run) {
    FiniteRun projected;
    projected.values = ProjectValues(run.values, 1);
    // Map B states back to A states by name prefix (p1/... or p2/...).
    projected.states.clear();
    for (StateId s : run.states) {
      std::string name = b.automaton().state_name(s);
      projected.states.push_back(StateId(name.substr(0, 2) == "p1" ? 0 : 1));
    }
    // Check the Example 5 equality semantics directly: every pair of
    // p1-positions with only p2 in between must agree on the value. The
    // Proposition 6 bookkeeping enforces the pair (n, m) while processing
    // position m, i.e. in the transition m → m+1, so only pairs with
    // m < length-1 are enforced within a finite prefix (runs violating a
    // pair at the last position are dead ends with no valid extension).
    for (size_t n = 0; n + 1 < projected.states.size(); ++n) {
      if (projected.states[n].value() != 0) continue;
      for (size_t m = n + 1; m + 1 < projected.states.size(); ++m) {
        if (projected.states[m].value() == 0) {
          EXPECT_EQ(projected.values[n][0], projected.values[m][0])
              << "B-run violates the simulated constraint";
          break;
        }
      }
    }
    ++checked;
    return checked < 200;
  });
  EXPECT_GT(checked, 0u);
}

// --- LTL-FO verification (Theorem 12) ---

TEST(LtlFoTest, Example1AlwaysPropagatesRegister2) {
  // Property: G (x2 = y2) — true in Example 1 (every type propagates
  // register 2).
  ExtendedAutomaton era(MakeExample1());
  LtlFoProperty prop;
  prop.propositions = {Formula::Eq(Term::Var(1), Term::Var(3))};  // x2 = y2
  prop.formula = LtlFormula::Globally(LtlFormula::Ap(0));
  auto result = VerifyLtlFo(era, prop);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->holds);
}

TEST(LtlFoTest, FalsePropertyYieldsCounterexample) {
  // Property: G (x1 = x2) — false: after δ1 the registers may diverge.
  ExtendedAutomaton era(MakeExample1());
  LtlFoProperty prop;
  prop.propositions = {Formula::Eq(Term::Var(0), Term::Var(1))};  // x1 = x2
  prop.formula = LtlFormula::Globally(LtlFormula::Ap(0));
  auto result = VerifyLtlFo(era, prop);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->holds);
  EXPECT_TRUE(result->counterexample.has_value());
}

TEST(LtlFoTest, ConstraintsRestrictCounterexamples) {
  // All-distinct automaton: property G !(x1 = y1) (consecutive values
  // differ) holds BECAUSE of the global constraint; without it the
  // trivial automaton would violate it.
  ExtendedAutomaton with_constraint = MakeAllDistinct();
  LtlFoProperty prop;
  prop.propositions = {Formula::Eq(Term::Var(0), Term::Var(1))};  // x1 = y1
  prop.formula =
      LtlFormula::Globally(LtlFormula::Not(LtlFormula::Ap(0)));
  auto with = VerifyLtlFo(with_constraint, prop);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_TRUE(with->holds);

  ExtendedAutomaton without{testing::MakeAllDistinct().automaton()};
  auto without_result = VerifyLtlFo(without, prop);
  ASSERT_TRUE(without_result.ok());
  EXPECT_FALSE(without_result->holds);
}

TEST(LtlFoTest, EventuallyProperty) {
  // Example 1: F (x1 = x2) — true: state q1 recurs (Büchi), and δ1 fired
  // from q1 requires x1 = x2.
  ExtendedAutomaton era(MakeExample1());
  LtlFoProperty prop;
  prop.propositions = {Formula::Eq(Term::Var(0), Term::Var(1))};
  prop.formula = LtlFormula::Eventually(LtlFormula::Ap(0));
  auto result = VerifyLtlFo(era, prop);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->holds);
}

TEST(LtlFoTest, GlobalVariableRegisters) {
  ExtendedAutomaton era(MakeExample1());
  ExtendedAutomaton with_z = AddGlobalVariableRegisters(era, 1);
  EXPECT_EQ(with_z.automaton().num_registers(), 3);
  // The z register never changes: G (x3 = y3) holds trivially.
  LtlFoProperty prop;
  prop.propositions = {Formula::Eq(Term::Var(2), Term::Var(5))};  // x3 = y3
  prop.formula = LtlFormula::Globally(LtlFormula::Ap(0));
  auto result = VerifyLtlFo(with_z, prop);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->holds);
}

}  // namespace
}  // namespace rav
