// libFuzzer entry point for the io/text_format parser frontier.
//
// Build (Clang only; the target is skipped on other compilers — see
// tests/CMakeLists.txt):
//   cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ -DRAV_FUZZ=ON
//   cmake --build build-fuzz --target fuzz_text_format -j
//   ./build-fuzz/tests/fuzz_text_format tests/data corpus/
//
// The invariants it enforces are the same ones the ctest-wired
// deterministic runner (tests/fuzz_smoke.cc) checks over its generated
// corpus: parsing arbitrary bytes never crashes, and an accepted input
// round-trips stably through ToTextFormat (print → parse → print is a
// fixed point). See docs/robustness.md.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/text_format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  rav::Result<rav::ExtendedAutomaton> era = rav::ParseExtendedAutomaton(text);
  if (!era.ok()) return 0;  // rejected inputs only need to not crash
  const std::string printed = rav::ToTextFormat(*era);
  rav::Result<rav::ExtendedAutomaton> again =
      rav::ParseExtendedAutomaton(printed);
  if (!again.ok()) {
    std::fprintf(stderr, "round-trip reparse failed: %s\n",
                 again.status().ToString().c_str());
    std::abort();
  }
  if (rav::ToTextFormat(*again) != printed) {
    std::fprintf(stderr, "round-trip not a fixed point\n");
    std::abort();
  }
  return 0;
}
