// Tests of the guard compilation layer (docs/compilation.md): table
// layout and lowering invariants of GuardTableSet, and randomized
// differentials holding the compiled engine to the interpreted reference
// across the three decision procedures — identical verdicts, witnesses,
// and stop reasons on every instance.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <random>
#include <vector>

#include "compile/guard_tables.h"
#include "era/emptiness.h"
#include "era/ltlfo.h"
#include "projection/lr_bounded.h"
#include "ra/control.h"
#include "ra/random.h"
#include "ra/transform.h"

namespace rav {
namespace {

using compile::GuardEngine;
using compile::GuardStats;
using compile::GuardTableSet;

// --- shared generators ---

Dfa RandomConstraintDfa(std::mt19937& rng, int alphabet_size) {
  std::uniform_int_distribution<int> num_states_dist(1, 4);
  const int n = num_states_dist(rng);
  std::uniform_int_distribution<int> state_dist(0, n - 1);
  Dfa dfa(alphabet_size, n, state_dist(rng));
  std::uniform_int_distribution<int> accept_dist(0, 3);
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < alphabet_size; ++a) {
      dfa.SetTransition(s, a, state_dist(rng));
    }
    dfa.SetAccepting(s, accept_dist(rng) == 0);
  }
  return dfa;
}

// A random automaton; `relational` adds a schema with a unary and a
// binary relation (LR-boundedness requires a relation-free schema).
RegisterAutomaton MakeRandomAutomaton(std::mt19937& rng, bool relational) {
  RandomAutomatonOptions options;
  options.num_registers = std::uniform_int_distribution<int>(1, 3)(rng);
  options.num_states = std::uniform_int_distribution<int>(2, 4)(rng);
  options.num_transitions = 2 * options.num_states;
  if (std::uniform_int_distribution<int>(0, 1)(rng) == 1) {
    options.schema.AddConstant("c0");
  }
  if (relational && std::uniform_int_distribution<int>(0, 1)(rng) == 1) {
    options.schema.AddRelation("R", 1);
    options.schema.AddRelation("S", 2);
  }
  return RandomAutomaton(rng, options);
}

// A deliberately small relational automaton that stays completable: one
// unary relation, k <= 2, few states (completion is exponential in the
// guard element count — see ra/transform.h).
RegisterAutomaton MakeSmallRelationalAutomaton(std::mt19937& rng) {
  RandomAutomatonOptions options;
  options.num_registers = std::uniform_int_distribution<int>(1, 2)(rng);
  options.num_states = std::uniform_int_distribution<int>(2, 3)(rng);
  options.num_transitions = 2 * options.num_states;
  options.schema.AddRelation("R", 1);
  return RandomAutomaton(rng, options);
}

ExtendedAutomaton AddRandomConstraints(RegisterAutomaton a,
                                       std::mt19937& rng) {
  const int num_states = a.num_states();
  const int k = a.num_registers();
  ExtendedAutomaton era(std::move(a));
  std::uniform_int_distribution<int> num_constraints_dist(0, 3);
  std::uniform_int_distribution<int> reg_pick(0, k - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const int nc = num_constraints_dist(rng);
  for (int c = 0; c < nc; ++c) {
    const RegisterPair regs{RegisterId(reg_pick(rng)),
                            RegisterId(reg_pick(rng))};
    EXPECT_TRUE(era.AddConstraintDfa(regs, /*is_equality=*/coin(rng) == 1,
                                     RandomConstraintDfa(rng, num_states))
                    .ok());
  }
  return era;
}

ExtendedAutomaton MakeRandomEra(std::mt19937& rng, bool relational) {
  return AddRandomConstraints(MakeRandomAutomaton(rng, relational), rng);
}

// Completion is worst-case exponential (relational schemas especially);
// instances that trip the transition cap are skipped by the caller.
std::optional<ExtendedAutomaton> CompletedEra(const ExtendedAutomaton& era,
                                              size_t max_transitions) {
  Result<RegisterAutomaton> completed =
      Completed(era.automaton(), max_transitions);
  if (!completed.ok()) return std::nullopt;
  ExtendedAutomaton out(std::move(*completed));
  for (const GlobalConstraint& c : era.constraints()) {
    EXPECT_TRUE(
        out.AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality, c.dfa,
                             c.description)
            .ok());
  }
  return out;
}

// A database with every constant bound and (when the schema has
// relations) a few random facts over a small value pool.
Database MakeRandomDatabase(const Schema& schema, std::mt19937& rng) {
  Database db(schema);
  std::uniform_int_distribution<DataValue> value_dist(0, 5);
  for (int c = 0; c < schema.num_constants(); ++c) {
    db.SetConstant(c, value_dist(rng));
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const int facts = std::uniform_int_distribution<int>(0, 6)(rng);
    for (int f = 0; f < facts; ++f) {
      ValueTuple tuple(schema.arity(r));
      for (DataValue& v : tuple) v = value_dist(rng);
      db.Insert(r, std::move(tuple));
    }
  }
  return db;
}

// --- engine selection ---

TEST(GuardEngineTest, NamesRoundTrip) {
  for (GuardEngine engine : {GuardEngine::kInterpreted, GuardEngine::kCompiled,
                             GuardEngine::kAuto}) {
    auto parsed = compile::ParseGuardEngine(compile::GuardEngineName(engine));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, engine);
  }
  EXPECT_FALSE(compile::ParseGuardEngine("bogus").has_value());
}

TEST(GuardEngineTest, ExplicitEnginesPassThroughResolve) {
  EXPECT_EQ(compile::ResolveGuardEngine(GuardEngine::kInterpreted),
            GuardEngine::kInterpreted);
  EXPECT_EQ(compile::ResolveGuardEngine(GuardEngine::kCompiled),
            GuardEngine::kCompiled);
}

TEST(GuardEngineTest, AutoHonorsEscapeHatch) {
  // Default (unset or any other value): compiled.
  ::unsetenv("RAV_GUARD_TABLES");
  EXPECT_EQ(compile::ResolveGuardEngine(GuardEngine::kAuto),
            GuardEngine::kCompiled);
  for (const char* off : {"off", "0", "interpreted"}) {
    ::setenv("RAV_GUARD_TABLES", off, 1);
    EXPECT_EQ(compile::ResolveGuardEngine(GuardEngine::kAuto),
              GuardEngine::kInterpreted)
        << "RAV_GUARD_TABLES=" << off;
  }
  ::setenv("RAV_GUARD_TABLES", "on", 1);
  EXPECT_EQ(compile::ResolveGuardEngine(GuardEngine::kAuto),
            GuardEngine::kCompiled);
  ::unsetenv("RAV_GUARD_TABLES");
}

// --- table layout ---

TEST(GuardTableLayoutTest, BuildDedupsByTypeEquality) {
  std::mt19937 rng(11);
  RegisterAutomaton a = MakeRandomAutomaton(rng, /*relational=*/true);
  const int k = a.num_registers();
  std::vector<const Type*> guards;
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    guards.push_back(&a.transition(ti).guard);
  }
  // Duplicate the whole list: the table set must not grow.
  std::vector<const Type*> doubled = guards;
  doubled.insert(doubled.end(), guards.begin(), guards.end());
  std::vector<GuardId> ids;
  GuardTableSet tables = GuardTableSet::Build(
      doubled, k, a.schema().num_constants(), &ids);
  ASSERT_EQ(ids.size(), doubled.size());
  EXPECT_EQ(tables.num_guards(),
            static_cast<int>(a.DistinctGuards().size()));
  EXPECT_LE(tables.num_guards(), static_cast<int>(guards.size()));
  for (size_t i = 0; i < doubled.size(); ++i) {
    // Each input maps to a table entry equal to it, and duplicates share
    // ids (first-use order, like RegisterAutomaton::DistinctGuards).
    ASSERT_GE(ids[i].value(), 0);
    ASSERT_LT(ids[i].value(), tables.num_guards());
    EXPECT_EQ(tables.guard(ids[i]), *doubled[i]);
    EXPECT_EQ(ids[i].value(), ids[i % guards.size()].value());
  }
}

TEST(GuardTableLayoutTest, RestrictionsMatchTypeAlgebra) {
  std::mt19937 rng(12);
  for (int iteration = 0; iteration < 20; ++iteration) {
    RegisterAutomaton a = MakeRandomAutomaton(rng, /*relational=*/true);
    const int k = a.num_registers();
    std::vector<const Type*> guards;
    for (int ti = 0; ti < a.num_transitions(); ++ti) {
      guards.push_back(&a.transition(ti).guard);
    }
    GuardTableSet tables =
        GuardTableSet::Build(guards, k, a.schema().num_constants());
    EXPECT_GT(tables.table_bytes(), 0u);
    EXPECT_EQ(tables.num_registers(), k);
    for (GuardId id : tables.GuardIds()) {
      EXPECT_EQ(tables.x_restricted(id), RestrictToX(tables.guard(id), k));
      EXPECT_EQ(tables.y_restricted_as_x(id),
                RestrictToYAsX(tables.guard(id), k));
      // The lowered program's instruction count is bounded by the type's
      // element structure: one union per non-representative element, at
      // most one diseq per recorded disequality.
      const Type& g = tables.guard(id);
      EXPECT_EQ(tables.closure_ops(id).unions.size(),
                static_cast<size_t>(g.num_elements() - g.num_classes()));
      EXPECT_LE(tables.closure_ops(id).diseqs.size(),
                g.disequalities().size());
    }
  }
}

TEST(GuardTableLayoutTest, HoldsMatchesInterpretedWalk) {
  std::mt19937 rng(13);
  std::uniform_int_distribution<DataValue> value_dist(0, 5);
  size_t checked = 0;
  for (int iteration = 0; iteration < 50; ++iteration) {
    RegisterAutomaton a = MakeRandomAutomaton(rng, /*relational=*/true);
    const int k = a.num_registers();
    Database db = MakeRandomDatabase(a.schema(), rng);
    std::vector<const Type*> guards;
    for (int ti = 0; ti < a.num_transitions(); ++ti) {
      guards.push_back(&a.transition(ti).guard);
    }
    std::vector<GuardId> ids;
    GuardTableSet tables =
        GuardTableSet::Build(guards, k, a.schema().num_constants(), &ids);
    GuardStats stats;
    for (int trial = 0; trial < 40; ++trial) {
      const size_t gi = trial % guards.size();
      ValueTuple xy(2 * k);
      for (DataValue& v : xy) v = value_dist(rng);
      const bool interpreted = guards[gi]->HoldsIn(db, xy);
      const bool compiled = tables.Holds(ids[gi], xy.data(), db, &stats);
      EXPECT_EQ(compiled, interpreted) << "guard " << gi;
      ++checked;
    }
    EXPECT_EQ(stats.evals, 40u);
  }
  EXPECT_EQ(checked, 50u * 40u);
}

TEST(GuardTableLayoutTest, EvalBatchMatchesScalarHolds) {
  std::mt19937 rng(14);
  std::uniform_int_distribution<DataValue> value_dist(0, 5);
  for (int iteration = 0; iteration < 30; ++iteration) {
    RegisterAutomaton a = MakeRandomAutomaton(rng, /*relational=*/true);
    const int k = a.num_registers();
    Database db = MakeRandomDatabase(a.schema(), rng);
    std::vector<const Type*> guards;
    for (int ti = 0; ti < a.num_transitions(); ++ti) {
      guards.push_back(&a.transition(ti).guard);
    }
    std::vector<GuardId> ids;
    GuardTableSet tables =
        GuardTableSet::Build(guards, k, a.schema().num_constants(), &ids);
    const size_t count = std::uniform_int_distribution<size_t>(1, 33)(rng);
    // Element-major SoA: soa[e * count + i] = element e of valuation i.
    std::vector<DataValue> soa(2 * k * count);
    std::vector<ValueTuple> rows(count, ValueTuple(2 * k));
    for (size_t i = 0; i < count; ++i) {
      for (int e = 0; e < 2 * k; ++e) {
        rows[i][e] = value_dist(rng);
        soa[static_cast<size_t>(e) * count + i] = rows[i][e];
      }
    }
    const GuardId id = ids[iteration % ids.size()];
    std::vector<unsigned char> ok(count, 1);
    GuardStats stats;
    tables.EvalBatch(id, soa.data(), count, db, ok.data(), &stats);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.evals, count);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(ok[i] != 0, tables.guard(id).HoldsIn(db, rows[i]))
          << "valuation " << i;
    }
  }
}

TEST(GuardTableLayoutTest, AlphabetExposesTablesOnlyWhenCompiled) {
  std::mt19937 rng(15);
  ExtendedAutomaton era = MakeRandomEra(rng, /*relational=*/false);
  ControlAlphabet interpreted(era.automaton(), GuardEngine::kInterpreted);
  EXPECT_EQ(interpreted.tables(), nullptr);
  EXPECT_FALSE(interpreted.transition_guard_view());
  EXPECT_EQ(interpreted.guard_table_bytes(), 0u);

  ControlAlphabet compiled(era.automaton(), GuardEngine::kCompiled);
  ASSERT_NE(compiled.tables(), nullptr);
  EXPECT_TRUE(compiled.transition_guard_view());
  EXPECT_GT(compiled.guard_table_bytes(), 0u);
  EXPECT_EQ(compiled.num_distinct_guards(),
            static_cast<int>(era.automaton().DistinctGuards().size()));
  // Same symbols, same restrictions — only the evaluation engine differs.
  ASSERT_EQ(compiled.size(), interpreted.size());
  for (int s = 0; s < compiled.size(); ++s) {
    EXPECT_EQ(compiled.x_restricted_guard_of(SymbolId(s)),
              interpreted.x_restricted_guard_of(SymbolId(s)));
  }
}

// --- randomized differentials: compiled vs interpreted, all three
// --- decision procedures (>= 220 instances total)

TEST(GuardTableDiffTest, EmptinessAgreesOnRandomInstances) {
  std::mt19937 rng(20260809);
  int instances = 0;
  int attempts = 0;
  while (instances < 100 && attempts < 500) {
    ++attempts;
    // Every third instance carries a (small, unary-relation) relational
    // schema; larger relational completions are exponential, and any
    // instance tripping the completion cap is skipped.
    const bool relational = instances % 3 == 2;
    std::optional<ExtendedAutomaton> era = CompletedEra(
        relational
            ? AddRandomConstraints(MakeSmallRelationalAutomaton(rng), rng)
            : MakeRandomEra(rng, /*relational=*/false),
        /*max_transitions=*/256);
    if (!era.has_value()) continue;
    ++instances;
    ControlAlphabet interpreted(era->automaton(), GuardEngine::kInterpreted);
    ControlAlphabet compiled(era->automaton(), GuardEngine::kCompiled);
    EraEmptinessOptions options;
    options.analyze_and_strip = false;  // isolate the engines under test
    options.max_lasso_length = 6;
    options.max_lassos = 300;
    options.max_search_steps = 20000;
    options.num_workers = 1;
    auto a = CheckEraEmptiness(*era, interpreted, options);
    auto b = CheckEraEmptiness(*era, compiled, options);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->nonempty, b->nonempty) << "instance " << instances;
    EXPECT_EQ(a->control_word, b->control_word) << "instance " << instances;
    EXPECT_EQ(a->stats.stop_reason, b->stats.stop_reason)
        << "instance " << instances;
    if (b->stats.lassos_checked > 0) {
      EXPECT_GT(b->stats.guard_table_bytes, 0u);
    }
  }
  EXPECT_EQ(instances, 100);
}

TEST(GuardTableDiffTest, LtlFoAgreesOnRandomInstances) {
  // VerifyLtlFo builds its alphabets internally, so the engines are
  // toggled the way operators do it: through the escape hatch.
  std::mt19937 rng(20260810);
  for (int iteration = 0; iteration < 60; ++iteration) {
    ExtendedAutomaton era = MakeRandomEra(rng, /*relational=*/false);
    const int k = era.automaton().num_registers();
    std::uniform_int_distribution<int> var_dist(0, 2 * k - 1);
    LtlFoProperty prop;
    const int v1 = var_dist(rng);
    const int v2 = var_dist(rng);
    prop.propositions = {Formula::Eq(Term::Var(v1), Term::Var(v2))};
    switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
      case 0:
        prop.formula = LtlFormula::Globally(LtlFormula::Ap(0));
        break;
      case 1:
        prop.formula = LtlFormula::Eventually(LtlFormula::Ap(0));
        break;
      default:
        prop.formula =
            LtlFormula::Globally(LtlFormula::Not(LtlFormula::Ap(0)));
        break;
    }
    VerificationOptions options;
    options.analyze_and_strip = false;
    options.emptiness.max_lasso_length = 6;
    options.emptiness.max_lassos = 300;
    options.emptiness.max_search_steps = 20000;
    options.emptiness.num_workers = 1;
    ::setenv("RAV_GUARD_TABLES", "off", 1);
    auto a = VerifyLtlFo(era, prop, options);
    ::unsetenv("RAV_GUARD_TABLES");
    auto b = VerifyLtlFo(era, prop, options);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->holds, b->holds) << "iteration " << iteration;
    EXPECT_EQ(a->counterexample, b->counterexample)
        << "iteration " << iteration;
    EXPECT_EQ(a->search_stats.stop_reason, b->search_stats.stop_reason)
        << "iteration " << iteration;
  }
}

TEST(GuardTableDiffTest, LrBoundAgreesOnRandomInstances) {
  std::mt19937 rng(20260811);
  for (int iteration = 0; iteration < 60; ++iteration) {
    ExtendedAutomaton era = MakeRandomEra(rng, /*relational=*/false);
    ControlAlphabet interpreted(era.automaton(), GuardEngine::kInterpreted);
    ControlAlphabet compiled(era.automaton(), GuardEngine::kCompiled);
    LrBoundOptions options;
    options.analyze_and_strip = false;
    options.max_lasso_length = 5;
    options.max_lassos = 200;
    options.max_search_steps = 20000;
    options.num_workers = 1;
    auto a = EstimateLrBound(era, interpreted, options);
    auto b = EstimateLrBound(era, compiled, options);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->max_cover, b->max_cover) << "iteration " << iteration;
    EXPECT_EQ(a->growth_detected, b->growth_detected)
        << "iteration " << iteration;
    EXPECT_EQ(a->stats.stop_reason, b->stats.stop_reason)
        << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace rav
