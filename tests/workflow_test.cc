#include <gtest/gtest.h>

#include "ra/simulate.h"
#include "ra/transform.h"
#include "workflow/builder.h"
#include "workflow/properties.h"
#include "workflow/view.h"

namespace rav {
namespace {

WorkflowBuilder MakeTwoStageWorkflow() {
  Schema schema;
  schema.AddRelation("Allowed", 1);
  WorkflowBuilder wf(schema);
  wf.AddAttribute("ticket");
  wf.AddAttribute("agent");
  wf.AddStage("open", /*initial=*/true);
  wf.AddStage("closed", /*initial=*/false, /*accepting=*/true);
  return wf;
}

TEST(WorkflowBuilderTest, BuildsAutomaton) {
  WorkflowBuilder wf = MakeTwoStageWorkflow();
  ASSERT_TRUE(wf.NewGuard()
                  .Keeps("ticket")
                  .Holds("Allowed", {"agent+"})
                  .ConnectTransition("open", "closed")
                  .ok());
  ASSERT_TRUE(wf.NewGuard()
                  .KeepsAllExcept({"ticket"})
                  .Changes("ticket")
                  .ConnectTransition("closed", "open")
                  .ok());
  auto a = wf.Build();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->num_registers(), 2);
  EXPECT_EQ(a->num_states(), 2);
  EXPECT_EQ(a->num_transitions(), 2);
  // First guard: x_ticket = y_ticket and Allowed(y_agent).
  const Type& g = a->transition(0).guard;
  EXPECT_TRUE(g.AreEqual(0, 2));
  EXPECT_EQ(g.atoms().size(), 1u);
  // Second guard: agent kept, ticket changes.
  const Type& g2 = a->transition(1).guard;
  EXPECT_TRUE(g2.AreEqual(1, 3));
  EXPECT_TRUE(g2.AreDistinct(0, 2));
}

TEST(WorkflowBuilderTest, UnknownNamesAreDeferredErrors) {
  WorkflowBuilder wf = MakeTwoStageWorkflow();
  EXPECT_FALSE(wf.NewGuard()
                   .Keeps("nonexistent")
                   .ConnectTransition("open", "closed")
                   .ok());
  EXPECT_FALSE(wf.Build().ok());  // the error sticks
}

TEST(WorkflowBuilderTest, UnknownStageRejected) {
  WorkflowBuilder wf = MakeTwoStageWorkflow();
  EXPECT_FALSE(
      wf.NewGuard().Keeps("ticket").ConnectTransition("open", "nowhere").ok());
}

TEST(WorkflowBuilderTest, ContradictoryGuardRejected) {
  WorkflowBuilder wf = MakeTwoStageWorkflow();
  EXPECT_FALSE(wf.NewGuard()
                   .Keeps("ticket")
                   .Changes("ticket")
                   .ConnectTransition("open", "closed")
                   .ok());
}

TEST(WorkflowBuilderTest, RequiresInitialAndAccepting) {
  Schema schema;
  WorkflowBuilder wf(schema);
  wf.AddAttribute("a");
  wf.AddStage("only");  // neither initial nor accepting
  EXPECT_FALSE(wf.Build().ok());
}

TEST(WorkflowBuilderTest, SimulatedRunsRespectGuards) {
  WorkflowBuilder wf = MakeTwoStageWorkflow();
  ASSERT_TRUE(wf.NewGuard()
                  .Keeps("ticket")
                  .Keeps("agent")
                  .ConnectTransition("open", "closed")
                  .ok());
  ASSERT_TRUE(wf.NewGuard()
                  .Keeps("agent")
                  .Changes("ticket")
                  .ConnectTransition("closed", "open")
                  .ok());
  auto a = wf.Build();
  ASSERT_TRUE(a.ok());
  Database db{a->schema()};
  size_t runs = 0;
  EnumerateRuns(*a, db, 4, {0, 1, 2}, [&](const FiniteRun& run) {
    // agent constant throughout.
    for (size_t n = 1; n < run.length(); ++n) {
      EXPECT_EQ(run.values[n][1], run.values[0][1]);
    }
    ++runs;
    return true;
  });
  EXPECT_GT(runs, 0u);
}

TEST(PropertyBuilderTest, VerifiesNamedProperties) {
  Schema schema;
  WorkflowBuilder wf(schema);
  wf.AddAttribute("ticket");
  wf.AddAttribute("agent");
  wf.AddStage("open", true, true);
  RAV_CHECK(wf.NewGuard()
                .Keeps("agent")
                .Changes("ticket")
                .ConnectTransition("open", "open")
                .ok());
  auto a = wf.Build();
  ASSERT_TRUE(a.ok());

  PropertyBuilder props(*a, {"ticket", "agent"});
  ASSERT_TRUE(props.DefineKept("agent_kept", "agent").ok());
  ASSERT_TRUE(props.DefineKept("ticket_kept", "ticket").ok());
  // Duplicate name rejected.
  EXPECT_FALSE(props.DefineKept("agent_kept", "agent").ok());
  // Unknown attribute rejected.
  EXPECT_FALSE(props.DefineKept("x", "nope").ok());

  ExtendedAutomaton era(*a);
  auto holds = props.Parse("G agent_kept");
  ASSERT_TRUE(holds.ok());
  auto r1 = VerifyLtlFo(era, *holds);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->holds);

  auto fails = props.Parse("F ticket_kept");
  ASSERT_TRUE(fails.ok());
  auto r2 = VerifyLtlFo(era, *fails);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->holds);

  // Unknown proposition in the formula is a parse error.
  EXPECT_FALSE(props.Parse("G nonexistent").ok());
}

TEST(ViewTest, VisibleFirstPermutation) {
  EXPECT_EQ(VisibleFirstPermutation(4, {2, 0}),
            (std::vector<int>{2, 0, 1, 3}));
  EXPECT_EQ(VisibleFirstPermutation(3, {}), (std::vector<int>{0, 1, 2}));
}

TEST(ViewTest, PermuteRegistersPreservesSemantics) {
  // Automaton where register 1 is kept and register 2 changes freely.
  RegisterAutomaton a(2, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddEq(b.X(0), b.Y(0));
  a.AddTransition(q, b.Build().value(), q);

  RegisterAutomaton swapped = PermuteRegisters(a, {1, 0});
  // In the permuted automaton register *2* is the kept one.
  const Type& guard = swapped.transition(0).guard;
  EXPECT_TRUE(guard.AreEqual(1, 3));
  EXPECT_FALSE(guard.AreEqual(0, 2));
}

TEST(ViewTest, ProjectionViewOfDatabaseFreeWorkflow) {
  // Two attributes, the first kept forever; view onto the *second*
  // attribute (the unconstrained one).
  Schema schema;
  WorkflowBuilder wf(schema);
  wf.AddAttribute("fixed");
  int attr_free = wf.AddAttribute("free");
  wf.AddStage("s", true, true);
  RAV_CHECK(wf.NewGuard().Keeps("fixed").ConnectTransition("s", "s").ok());
  auto a = wf.Build();
  ASSERT_TRUE(a.ok());
  auto view = MakeProjectionView(*a, {attr_free});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->automaton().num_registers(), 1);
}

TEST(ViewTest, HiddenDatabaseViewOfWorkflow) {
  Schema schema;
  schema.AddRelation("Allowed", 1);
  WorkflowBuilder wf(schema);
  int attr_ticket = wf.AddAttribute("ticket");
  wf.AddAttribute("agent");
  wf.AddStage("open", true, true);
  RAV_CHECK(wf.NewGuard()
                .Keeps("ticket")
                .Holds("Allowed", {"agent+"})
                .ConnectTransition("open", "open")
                .ok());
  auto a = wf.Build();
  ASSERT_TRUE(a.ok());
  Theorem24Stats stats;
  auto view = MakeHiddenDatabaseView(*a, {attr_ticket}, &stats);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->automaton().schema().empty());
  EXPECT_EQ(view->automaton().num_registers(), 1);
}

}  // namespace
}  // namespace rav
