#ifndef RAV_TESTS_TEST_UTIL_H_
#define RAV_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <vector>

#include "era/extended_automaton.h"
#include "ra/register_automaton.h"
#include "relational/schema.h"
#include "types/type.h"

namespace rav::testing {

// Shorthand for literal state sequences in run expectations:
// run.states = StateIds({0, 1, 0}).
inline std::vector<StateId> StateIds(std::initializer_list<int> ids) {
  std::vector<StateId> out;
  out.reserve(ids.size());
  for (int v : ids) out.push_back(StateId(v));
  return out;
}

// Example 1 of the paper: the 2-register automaton with states q1, q2 and
// types δ1 = (x1 = x2 ∧ x2 = y2), δ2 = (x2 = y2),
// δ3 = (x2 = y2 ∧ y1 = y2); transitions (q1,δ1,q2), (q2,δ2,q2),
// (q2,δ3,q1); q1 initial and final; no database.
inline RegisterAutomaton MakeExample1() {
  RegisterAutomaton a(2, Schema());
  StateId q1 = a.AddState("q1");
  StateId q2 = a.AddState("q2");
  a.SetInitial(q1);
  a.SetFinal(q1);

  TypeBuilder d1 = a.NewGuardBuilder();
  d1.AddEq(d1.X(0), d1.X(1)).AddEq(d1.X(1), d1.Y(1));
  TypeBuilder d2 = a.NewGuardBuilder();
  d2.AddEq(d2.X(1), d2.Y(1));
  TypeBuilder d3 = a.NewGuardBuilder();
  d3.AddEq(d3.X(1), d3.Y(1)).AddEq(d3.Y(0), d3.Y(1));

  a.AddTransition(q1, d1.Build().value(), q2);
  a.AddTransition(q2, d2.Build().value(), q2);
  a.AddTransition(q2, d3.Build().value(), q1);
  return a;
}

// Example 5: the 1-register extended automaton capturing the projection of
// Example 1 on register 1: states p1 (initial, final), p2; both transitions
// carry the empty type; constraint e=₁₁ = p1 p2* p1.
inline ExtendedAutomaton MakeExample5() {
  RegisterAutomaton b(1, Schema());
  StateId p1 = b.AddState("p1");
  StateId p2 = b.AddState("p2");
  b.SetInitial(p1);
  b.SetFinal(p1);
  Type empty = b.NewGuardBuilder().Build().value();
  b.AddTransition(p1, empty, p2);
  b.AddTransition(p2, empty, p2);
  b.AddTransition(p2, empty, p1);
  ExtendedAutomaton era(std::move(b));
  Status s = era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                       /*is_equality=*/true, "p1 p2* p1");
  RAV_CHECK(s.ok());
  return era;
}

// Example 7: one register, one state q (initial+final), trivial looping
// transition, and the global constraint that all register values are
// pairwise distinct: e≠₁₁ = q q* (every factor of length >= 2... the
// constraint q+ also relates a position to itself; the paper's intent is
// distinct positions, so we use q q* which still matches the length-1
// factor... to relate *distinct* positions only we use q q+ = factors of
// length >= 2).
inline ExtendedAutomaton MakeAllDistinct() {
  RegisterAutomaton b(1, Schema());
  StateId q = b.AddState("q");
  b.SetInitial(q);
  b.SetFinal(q);
  Type empty = b.NewGuardBuilder().Build().value();
  b.AddTransition(q, empty, q);
  ExtendedAutomaton era(std::move(b));
  Status s = era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                       /*is_equality=*/false, "q q+");
  RAV_CHECK(s.ok());
  return era;
}

}  // namespace rav::testing

#endif  // RAV_TESTS_TEST_UTIL_H_
