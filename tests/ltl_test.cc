#include <gtest/gtest.h>

#include <random>
#include <string>

#include "ltl/ltl.h"
#include "ltl/tableau.h"

namespace rav {
namespace {

int Props(const std::string& name) {
  if (name == "p") return 0;
  if (name == "q") return 1;
  if (name == "r") return 2;
  return -1;
}

LtlFormula Parse(const std::string& text) {
  auto f = LtlFormula::Parse(text, Props);
  RAV_CHECK(f.ok());
  return std::move(f).value();
}

// Valuation function over a lasso of AP bitmasks.
std::function<uint64_t(size_t)> MaskLasso(std::vector<uint64_t> prefix,
                                          std::vector<uint64_t> cycle) {
  return [prefix, cycle](size_t i) {
    if (i < prefix.size()) return prefix[i];
    return cycle[(i - prefix.size()) % cycle.size()];
  };
}

TEST(LtlParserTest, PrecedenceAndAssociativity) {
  // U binds tighter than &, which binds tighter than ->:
  // parses as p -> ((q U r) & p).
  LtlFormula f = Parse("p -> q U r & p");
  EXPECT_EQ(f.op(), LtlFormula::Op::kImplies);
  EXPECT_EQ(f.right().op(), LtlFormula::Op::kAnd);
  EXPECT_EQ(f.right().left().op(), LtlFormula::Op::kUntil);
}

TEST(LtlParserTest, Errors) {
  EXPECT_FALSE(LtlFormula::Parse("p &", Props).ok());
  EXPECT_FALSE(LtlFormula::Parse("unknown_prop", Props).ok());
  EXPECT_FALSE(LtlFormula::Parse("(p", Props).ok());
}

TEST(LtlEvalTest, GloballyEventually) {
  // G F p on (p, ¬p)^ω: true. On ¬p^ω with p in the prefix: false.
  LtlFormula gfp = Parse("G F p");
  EXPECT_TRUE(gfp.EvalOnLasso(MaskLasso({}, {1, 0}), 0, 2));
  EXPECT_FALSE(gfp.EvalOnLasso(MaskLasso({1}, {0}), 1, 1));
}

TEST(LtlEvalTest, UntilSemantics) {
  LtlFormula puq = Parse("p U q");
  // p p q ... : true at 0.
  EXPECT_TRUE(puq.EvalOnLasso(MaskLasso({1, 1, 2}, {0}), 3, 1));
  // p p p ... never q: false.
  EXPECT_FALSE(puq.EvalOnLasso(MaskLasso({}, {1}), 0, 1));
  // q immediately: true.
  EXPECT_TRUE(puq.EvalOnLasso(MaskLasso({2}, {0}), 1, 1));
  // gap in p before q: false.
  EXPECT_FALSE(puq.EvalOnLasso(MaskLasso({1, 0, 2}, {0}), 3, 1));
}

TEST(LtlEvalTest, NextAndRelease) {
  EXPECT_TRUE(Parse("X p").EvalOnLasso(MaskLasso({0, 1}, {0}), 2, 1));
  EXPECT_FALSE(Parse("X p").EvalOnLasso(MaskLasso({1, 0}, {0}), 2, 1));
  // q R p : p holds up to and including the first q (or forever).
  LtlFormula qrp = Parse("q R p");
  EXPECT_TRUE(qrp.EvalOnLasso(MaskLasso({}, {1}), 0, 1));        // p forever
  EXPECT_TRUE(qrp.EvalOnLasso(MaskLasso({1, 3}, {0}), 2, 1));    // released
  EXPECT_FALSE(qrp.EvalOnLasso(MaskLasso({1, 0}, {1}), 2, 1));   // p gap
}

TEST(LtlTableauTest, SatisfiableFormulasHaveWitnesses) {
  auto w = LtlSatisfiableWitness(Parse("G F p & G F !p"), 1);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->has_value());
}

TEST(LtlTableauTest, UnsatisfiableFormulasHaveNone) {
  auto w = LtlSatisfiableWitness(Parse("G p & F !p"), 1);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(w->has_value());
  auto w2 = LtlSatisfiableWitness(Parse("p & !p"), 1);
  ASSERT_TRUE(w2.ok());
  EXPECT_FALSE(w2->has_value());
}

TEST(LtlTableauTest, WitnessSatisfiesFormulaPerOracle) {
  LtlFormula f = Parse("(p U q) & G (q -> X p)");
  auto w = LtlSatisfiableWitness(f, 2);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->has_value());
  const LassoWord& lasso = **w;
  auto mask_at = [&](size_t i) {
    return static_cast<uint64_t>(lasso.SymbolAt(i));
  };
  EXPECT_TRUE(
      f.EvalOnLasso(mask_at, lasso.prefix.size(), lasso.cycle.size()));
}

// Property test: the tableau NBA agrees with the direct lasso-evaluation
// oracle on random formulas and random lassos.
class TableauAgreementTest : public ::testing::TestWithParam<int> {};

LtlFormula RandomFormula(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> op_dist(0, 9);
  std::uniform_int_distribution<int> ap_dist(0, 1);
  if (depth == 0) {
    return LtlFormula::Ap(ap_dist(rng));
  }
  switch (op_dist(rng)) {
    case 0:
      return LtlFormula::Not(RandomFormula(rng, depth - 1));
    case 1:
      return LtlFormula::And(RandomFormula(rng, depth - 1),
                             RandomFormula(rng, depth - 1));
    case 2:
      return LtlFormula::Or(RandomFormula(rng, depth - 1),
                            RandomFormula(rng, depth - 1));
    case 3:
      return LtlFormula::Next(RandomFormula(rng, depth - 1));
    case 4:
      return LtlFormula::Until(RandomFormula(rng, depth - 1),
                               RandomFormula(rng, depth - 1));
    case 5:
      return LtlFormula::Eventually(RandomFormula(rng, depth - 1));
    case 6:
      return LtlFormula::Globally(RandomFormula(rng, depth - 1));
    case 7:
      return LtlFormula::Release(RandomFormula(rng, depth - 1),
                                 RandomFormula(rng, depth - 1));
    default:
      return LtlFormula::Ap(ap_dist(rng));
  }
}

TEST_P(TableauAgreementTest, NbaAgreesWithOracle) {
  std::mt19937 rng(GetParam());
  LtlFormula f = RandomFormula(rng, 2);
  auto aut = LtlToNba(f, 2);
  ASSERT_TRUE(aut.ok());
  std::uniform_int_distribution<int> mask_dist(0, 3);
  std::uniform_int_distribution<int> len_dist(1, 3);
  for (int trial = 0; trial < 12; ++trial) {
    LassoWord lasso;
    int plen = len_dist(rng) - 1;
    int clen = len_dist(rng);
    for (int i = 0; i < plen; ++i) lasso.prefix.push_back(mask_dist(rng));
    for (int i = 0; i < clen; ++i) lasso.cycle.push_back(mask_dist(rng));
    bool by_nba = aut->nba.AcceptsLasso(lasso);
    bool by_oracle = f.EvalOnLasso(
        [&](size_t i) { return static_cast<uint64_t>(lasso.SymbolAt(i)); },
        lasso.prefix.size(), lasso.cycle.size());
    EXPECT_EQ(by_nba, by_oracle)
        << "formula: " << f.ToString([](int p) { return "p" + std::to_string(p); })
        << " lasso: " << lasso.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TableauAgreementTest,
                         ::testing::Range(1, 40));

}  // namespace
}  // namespace rav
