#include <gtest/gtest.h>

#include "era/quasi_regular.h"
#include "ra/transform.h"
#include "test_util.h"

namespace rav {
namespace {

ExtendedAutomaton CompletedEra(const ExtendedAutomaton& era) {
  RegisterAutomaton completed = Completed(era.automaton()).value();
  ExtendedAutomaton out(std::move(completed));
  for (const GlobalConstraint& c : era.constraints()) {
    RAV_CHECK(out.AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality,
                                   c.dfa, c.description)
                  .ok());
  }
  return out;
}

TEST(QuasiRegularTest, RequiresCompleteAutomaton) {
  ExtendedAutomaton era = testing::MakeExample5();
  EXPECT_FALSE(QuasiRegularControl::Build(era).ok());
}

TEST(QuasiRegularTest, Example5MembershipVerdicts) {
  ExtendedAutomaton era = CompletedEra(testing::MakeExample5());
  auto qr = QuasiRegularControl::Build(era);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();

  // A genuine control lasso of the SControl automaton is a member.
  auto lasso = qr->scontrol_nba().FindAcceptingLasso();
  ASSERT_TRUE(lasso.has_value());
  auto verdict = qr->Contains(*lasso);
  EXPECT_TRUE(verdict.in_scontrol);
  EXPECT_TRUE(verdict.closure_consistent);
  EXPECT_TRUE(verdict.member());

  // A word over invalid symbols is rejected before any analysis.
  EXPECT_FALSE(qr->Contains(LassoWord{{}, {999}}).in_scontrol);
}

TEST(QuasiRegularTest, InconsistentConstraintsRejectClosure) {
  ExtendedAutomaton era = testing::MakeExample5();
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                      /*is_equality=*/false, "p1 p2* p1")
                .ok());
  ExtendedAutomaton complete = CompletedEra(era);
  auto qr = QuasiRegularControl::Build(complete);
  ASSERT_TRUE(qr.ok());
  auto lasso = qr->scontrol_nba().FindAcceptingLasso();
  ASSERT_TRUE(lasso.has_value());
  auto verdict = qr->Contains(*lasso);
  EXPECT_TRUE(verdict.in_scontrol);
  EXPECT_FALSE(verdict.closure_consistent);
  EXPECT_FALSE(verdict.member());
}

TEST(QuasiRegularTest, Example8CliqueUnbounded) {
  // All-distinct values forced into a unary relation: in SControl and
  // closure-consistent, but the clique grows with the window — excluded
  // from Control over finite databases (Example 8's non-ω-regularity).
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.X(0)}, true).AddAtom(p, {b.Y(0)}, true);
  a.AddTransition(q, b.Build().value(), q);
  ExtendedAutomaton era(Completed(a).value());
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                      false, "q q+")
                .ok());

  auto qr = QuasiRegularControl::Build(era);
  ASSERT_TRUE(qr.ok());
  // The completed automaton has both x1 = y1 and x1 ≠ y1 refinements; the
  // constraint kills the former, so search for a closure-consistent
  // lasso: it must then fail the clique-boundedness conjunct.
  bool found_consistent = false;
  qr->scontrol_nba().EnumerateAcceptingLassos(
      6, 200, [&](const LassoWord& lasso) {
        auto verdict = qr->Contains(lasso);
        EXPECT_TRUE(verdict.in_scontrol);
        if (!verdict.closure_consistent) return true;
        found_consistent = true;
        EXPECT_FALSE(verdict.clique_bounded);
        EXPECT_FALSE(verdict.member());
        EXPECT_GT(verdict.clique, 1);
        return false;
      });
  EXPECT_TRUE(found_consistent);
}

TEST(QuasiRegularTest, NoDatabaseMeansCliqueVacuous) {
  ExtendedAutomaton era = CompletedEra(testing::MakeAllDistinct());
  auto qr = QuasiRegularControl::Build(era);
  ASSERT_TRUE(qr.ok());
  // All-distinct is satisfiable without a database: among the symbolic
  // lassos, the all-inequality refinement is a member (the clique
  // condition is vacuous without relations).
  bool found_member = false;
  qr->scontrol_nba().EnumerateAcceptingLassos(
      6, 200, [&](const LassoWord& lasso) {
        auto verdict = qr->Contains(lasso);
        if (!verdict.member()) return true;
        EXPECT_TRUE(verdict.clique_bounded);
        found_member = true;
        return false;
      });
  EXPECT_TRUE(found_member);
}

}  // namespace
}  // namespace rav
