// Tests of the lasso-search engine: truthful truncation verdicts (the
// stop-reason taxonomy), the resumable LassoEnumerator, determinism of the
// parallel search across worker counts, and the strict integer parsing the
// CLI depends on. The determinism tests are also the TSan target (see
// CMakePresets.json).

#include <gtest/gtest.h>

#include "automata/nba.h"
#include "base/numbers.h"
#include "era/emptiness.h"
#include "era/ltlfo.h"
#include "era/parallel_search.h"
#include "projection/lr_bounded.h"
#include "ra/transform.h"
#include "test_util.h"

namespace rav {
namespace {

ExtendedAutomaton CompletedEra(const ExtendedAutomaton& era) {
  RegisterAutomaton completed = Completed(era.automaton()).value();
  ExtendedAutomaton out(std::move(completed));
  for (const GlobalConstraint& c : era.constraints()) {
    Status s = out.AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality,
                                    c.dfa, c.description);
    RAV_CHECK(s.ok());
  }
  return out;
}

// The bench family (bench/bench_common.h) in miniature: a k-register shift
// ring with extra skip transitions so the accepting-lasso space is large
// enough that worker scheduling could plausibly reorder results.
ExtendedAutomaton MakeShiftRingSearchEra(int k, int n, bool contradictory) {
  RegisterAutomaton a(k, Schema());
  for (int s = 0; s < n; ++s) a.AddState("s" + std::to_string(s));
  a.SetInitial(StateId(0));
  a.SetFinal(StateId(0));
  for (int s = 0; s < n; ++s) {
    TypeBuilder b = a.NewGuardBuilder();
    for (int i = 0; i + 1 < k; ++i) b.AddEq(b.X(i), b.Y(i + 1));
    a.AddTransition(StateId(s), b.Build().value(), StateId((s + 1) % n));
  }
  for (int s = 0; s < n; ++s) {
    TypeBuilder b = a.NewGuardBuilder();
    for (int i = 0; i + 1 < k; ++i) b.AddEq(b.X(i), b.Y(i + 1));
    b.AddEq(b.X(0), b.Y(0));
    a.AddTransition(StateId(s), b.Build().value(), StateId((s + 2) % n));
  }
  ExtendedAutomaton era(std::move(a));
  if (contradictory) {
    const RegisterPair r00{RegisterId(0), RegisterId(0)};
    RAV_CHECK(era.AddConstraintFromText(r00, true, "s0 .* s0").ok());
    RAV_CHECK(era.AddConstraintFromText(r00, false, "s0 .* s0").ok());
  }
  return era;
}

// Example 5 with an added inequality on the same factor as its equality
// constraint: every lasso's closure is inconsistent, so the search visits
// the whole bounded space (or its budget) without finding a witness.
ExtendedAutomaton MakeContradictoryExample5() {
  ExtendedAutomaton era = testing::MakeExample5();
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                      false, "p1 p2* p1")
                .ok());
  return era;
}

// ---------------------------------------------------------------------------
// Truthful truncation verdicts (the headline regression).

TEST(SearchTruncation, StepBudgetSetsTruncated) {
  // A nonempty ERA searched under a step budget too small to reach any
  // witness: the old code reported search_truncated == false because
  // fewer than max_lassos candidates had been *delivered*, silently
  // presenting a budget-clipped EMPTY as definitive.
  ExtendedAutomaton era = CompletedEra(testing::MakeExample5());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.max_search_steps = 1;
  auto result = CheckEraEmptiness(era, alphabet, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kStepBudget);
}

TEST(SearchTruncation, LassoBudgetSetsTruncated) {
  ExtendedAutomaton era = CompletedEra(MakeContradictoryExample5());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = 8;
  options.max_lassos = 2;
  auto result = CheckEraEmptiness(era, alphabet, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kLassoBudget);
  EXPECT_EQ(result->stats.lassos_enumerated, 2u);
}

TEST(SearchTruncation, LengthBoundSetsTruncated) {
  // Generous step/count budgets but a short length bound: DFS paths are
  // clipped, so the EMPTY verdict only covers lassos up to the bound.
  ExtendedAutomaton era = CompletedEra(MakeContradictoryExample5());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = 4;
  options.max_lassos = 100000;
  options.max_search_steps = 10000000;
  auto result = CheckEraEmptiness(era, alphabet, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kLengthBound);
}

TEST(SearchTruncation, ExhaustedSpaceIsDefinitive) {
  // With budgets comfortably above the occurrence-pruned DFS space (the
  // small incomplete SControl NBA, not the exponentially larger completed
  // one), the enumeration finishes cleanly and the EMPTY verdict is
  // definitive.
  ExtendedAutomaton era = MakeContradictoryExample5();
  ControlAlphabet alphabet(era.automaton());
  Nba scontrol = BuildSControlNba(era.automaton(), alphabet);
  EraEmptinessOptions options;
  options.max_lasso_length = 50;
  options.max_lassos = 1000000;
  options.max_search_steps = 1000000;
  EraEmptinessResult result =
      SearchConsistentLasso(era, alphabet, scontrol, options);
  EXPECT_FALSE(result.nonempty);
  EXPECT_FALSE(result.search_truncated);
  EXPECT_EQ(result.stats.stop_reason, SearchStopReason::kExhausted);
  EXPECT_GT(result.stats.inconsistent_closures, 0u);
}

TEST(SearchTruncation, WitnessFoundIsNotTruncated) {
  ExtendedAutomaton era = CompletedEra(testing::MakeExample5());
  ControlAlphabet alphabet(era.automaton());
  auto result = CheckEraEmptiness(era, alphabet);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->nonempty);
  EXPECT_FALSE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kWitnessFound);
}

TEST(SearchTruncation, LtlFoVerdictCarriesStopReason) {
  // "Holds" under a tiny step budget must be flagged bound-relative.
  ExtendedAutomaton era = testing::MakeExample5();
  LtlFoProperty prop;
  prop.propositions = {Formula::Eq(Term::Var(0), Term::Var(1))};  // x1 = y1
  prop.formula = LtlFormula::Globally(LtlFormula::Ap(0));
  VerificationOptions options;
  options.emptiness.max_search_steps = 1;
  auto result = VerifyLtlFo(era, prop, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->holds);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->search_stats.stop_reason, SearchStopReason::kStepBudget);
}

TEST(SearchTruncation, LrBoundCarriesStopReason) {
  ExtendedAutomaton era = testing::MakeAllDistinct();
  ControlAlphabet alphabet(era.automaton());
  LrBoundOptions options;
  options.max_lassos = 1;
  auto result = EstimateLrBound(era, alphabet, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kLassoBudget);
  EXPECT_EQ(result->lassos_examined, 1u);
}

// ---------------------------------------------------------------------------
// The resumable enumerator (NBA layer).

TEST(LassoEnumerator, ExhaustsSmallAutomaton) {
  Nba nba(1);
  int q = nba.AddState();
  nba.SetInitial(q);
  nba.SetAccepting(q);
  nba.AddTransition(q, 0, q);
  LassoEnumerator enumerator(nba, /*max_length=*/10, /*max_count=*/100,
                             /*max_steps=*/1000);
  LassoWord word;
  size_t index = 0;
  size_t count = 0;
  size_t last_index = 0;
  while (enumerator.Next(&word, &index)) {
    EXPECT_EQ(index, count);  // ranks are 0-based and contiguous
    last_index = index;
    ++count;
  }
  EXPECT_GT(count, 0u);
  EXPECT_EQ(last_index, count - 1);
  EXPECT_EQ(enumerator.stop(), LassoEnumStop::kExhausted);
  EXPECT_EQ(enumerator.delivered(), count);
}

TEST(LassoEnumerator, MatchesCallbackEnumeration) {
  // The pull-style enumerator must deliver exactly the sequence the
  // callback API delivers, in the same order, with the same stop reason.
  Nba nba(2);
  int a = nba.AddState();
  int b = nba.AddState();
  nba.SetInitial(a);
  nba.SetAccepting(a);
  nba.AddTransition(a, 0, b);
  nba.AddTransition(b, 1, a);
  nba.AddTransition(b, 0, b);
  std::vector<LassoWord> pushed;
  Nba::EnumerationStats stats = nba.EnumerateAcceptingLassosEx(
      8, 1000,
      [&](const LassoWord& w) {
        pushed.push_back(w);
        return true;
      },
      100000);
  LassoEnumerator enumerator(nba, 8, 1000, 100000);
  std::vector<LassoWord> pulled;
  LassoWord word;
  size_t index;
  while (enumerator.Next(&word, &index)) pulled.push_back(word);
  ASSERT_EQ(pushed.size(), pulled.size());
  for (size_t i = 0; i < pushed.size(); ++i) {
    EXPECT_EQ(pushed[i].prefix, pulled[i].prefix) << "lasso " << i;
    EXPECT_EQ(pushed[i].cycle, pulled[i].cycle) << "lasso " << i;
  }
  EXPECT_EQ(stats.stop, enumerator.stop());
  EXPECT_EQ(stats.steps, enumerator.steps());
}

TEST(LassoEnumerator, ReportsStepBudget) {
  Nba nba(1);
  int q = nba.AddState();
  nba.SetInitial(q);
  nba.SetAccepting(q);
  nba.AddTransition(q, 0, q);
  LassoEnumerator enumerator(nba, 10, 100, /*max_steps=*/1);
  LassoWord word;
  size_t index;
  while (enumerator.Next(&word, &index)) {
  }
  EXPECT_EQ(enumerator.stop(), LassoEnumStop::kMaxSteps);
}

TEST(LassoEnumerator, ReportsCountCap) {
  Nba nba(1);
  int q = nba.AddState();
  nba.SetInitial(q);
  nba.SetAccepting(q);
  nba.AddTransition(q, 0, q);
  LassoEnumerator enumerator(nba, 10, /*max_count=*/1, 1000);
  LassoWord word;
  size_t index;
  EXPECT_TRUE(enumerator.Next(&word, &index));
  EXPECT_FALSE(enumerator.Next(&word, &index));
  EXPECT_EQ(enumerator.stop(), LassoEnumStop::kMaxCount);
}

TEST(LassoEnumerator, ReportsLengthClipping) {
  Nba nba(1);
  int q = nba.AddState();
  nba.SetInitial(q);
  nba.SetAccepting(q);
  nba.AddTransition(q, 0, q);
  LassoEnumerator enumerator(nba, /*max_length=*/1, 100, 1000);
  LassoWord word;
  size_t index;
  size_t count = 0;
  while (enumerator.Next(&word, &index)) ++count;
  EXPECT_EQ(count, 1u);  // only the length-1 cycle fits
  EXPECT_EQ(enumerator.stop(), LassoEnumStop::kLengthClipped);
}

// ---------------------------------------------------------------------------
// Parallel determinism: the engine's verdict and witness must be
// byte-identical at every worker count (lowest-rank-wins tie-breaking).

TEST(ParallelSearch, DeterministicWitnessOnExample5) {
  ExtendedAutomaton era = CompletedEra(testing::MakeExample5());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions serial;
  serial.num_workers = 1;
  auto reference = CheckEraEmptiness(era, alphabet, serial);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->nonempty);
  for (int workers : {2, 8}) {
    EraEmptinessOptions options;
    options.num_workers = workers;
    auto result = CheckEraEmptiness(era, alphabet, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->nonempty) << workers << " workers";
    EXPECT_EQ(result->control_word.prefix, reference->control_word.prefix)
        << workers << " workers";
    EXPECT_EQ(result->control_word.cycle, reference->control_word.cycle)
        << workers << " workers";
    EXPECT_EQ(result->stats.workers, workers);
  }
}

TEST(ParallelSearch, DeterministicWitnessOnShiftRing) {
  ExtendedAutomaton era = MakeShiftRingSearchEra(4, 6, false);
  ControlAlphabet alphabet(era.automaton());
  Nba scontrol = BuildSControlNba(era.automaton(), alphabet);
  EraEmptinessOptions serial;
  serial.max_lasso_length = 12;
  serial.max_lassos = 128;
  serial.num_workers = 1;
  EraEmptinessResult reference =
      SearchConsistentLasso(era, alphabet, scontrol, serial);
  ASSERT_TRUE(reference.nonempty);
  for (int workers : {2, 8}) {
    EraEmptinessOptions options = serial;
    options.num_workers = workers;
    EraEmptinessResult result =
        SearchConsistentLasso(era, alphabet, scontrol, options);
    EXPECT_TRUE(result.nonempty) << workers << " workers";
    EXPECT_EQ(result.control_word.prefix, reference.control_word.prefix)
        << workers << " workers";
    EXPECT_EQ(result.control_word.cycle, reference.control_word.cycle)
        << workers << " workers";
    EXPECT_EQ(result.stats.stop_reason, SearchStopReason::kWitnessFound);
  }
}

TEST(ParallelSearch, DeterministicEmptyVerdictOnShiftRing) {
  // All-reject workload: every worker count must see the same lassos and
  // reach the same budget-truncated EMPTY with the same stop reason.
  ExtendedAutomaton era = MakeShiftRingSearchEra(4, 6, true);
  ControlAlphabet alphabet(era.automaton());
  Nba scontrol = BuildSControlNba(era.automaton(), alphabet);
  EraEmptinessOptions serial;
  serial.max_lasso_length = 10;
  serial.max_lassos = 64;
  serial.num_workers = 1;
  EraEmptinessResult reference =
      SearchConsistentLasso(era, alphabet, scontrol, serial);
  ASSERT_FALSE(reference.nonempty);
  for (int workers : {2, 8}) {
    EraEmptinessOptions options = serial;
    options.num_workers = workers;
    EraEmptinessResult result =
        SearchConsistentLasso(era, alphabet, scontrol, options);
    EXPECT_FALSE(result.nonempty) << workers << " workers";
    EXPECT_EQ(result.stats.stop_reason, reference.stats.stop_reason);
    EXPECT_EQ(result.stats.lassos_enumerated,
              reference.stats.lassos_enumerated);
    EXPECT_EQ(result.stats.lassos_checked, reference.stats.lassos_checked);
    EXPECT_EQ(result.search_truncated, reference.search_truncated);
  }
}

TEST(ParallelSearch, LrBoundMatchesSerialAtAnyWorkerCount) {
  ExtendedAutomaton era = MakeShiftRingSearchEra(4, 6, false);
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                      false, "s0 .* s3")
                .ok());
  ControlAlphabet alphabet(era.automaton());
  LrBoundOptions serial;
  serial.max_lassos = 32;
  serial.max_lasso_length = 10;
  serial.num_workers = 1;
  auto reference = EstimateLrBound(era, alphabet, serial);
  ASSERT_TRUE(reference.ok());
  for (int workers : {2, 8}) {
    LrBoundOptions options = serial;
    options.num_workers = workers;
    auto result = EstimateLrBound(era, alphabet, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->max_cover, reference->max_cover) << workers;
    EXPECT_EQ(result->growth_detected, reference->growth_detected) << workers;
    EXPECT_EQ(result->stats.stop_reason, reference->stats.stop_reason);
  }
}

TEST(ParallelSearch, ZeroWorkersMeansHardwareConcurrency) {
  ExtendedAutomaton era = CompletedEra(testing::MakeExample5());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.num_workers = 0;
  auto result = CheckEraEmptiness(era, alphabet, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->nonempty);
  EXPECT_GE(result->stats.workers, 1);
}

TEST(ParallelSearch, StatsToStringMentionsStopReason) {
  SearchStats stats;
  stats.stop_reason = SearchStopReason::kStepBudget;
  EXPECT_NE(stats.ToString().find("step-budget"), std::string::npos);
  EXPECT_TRUE(stats.truncated());
  stats.stop_reason = SearchStopReason::kWitnessFound;
  EXPECT_FALSE(stats.truncated());
  stats.stop_reason = SearchStopReason::kExhausted;
  EXPECT_FALSE(stats.truncated());
}

// ---------------------------------------------------------------------------
// Strict integer parsing (the CLI's replacement for bare std::stoi).

TEST(Numbers, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt32("42").value(), 42);
  EXPECT_EQ(ParseInt32("-7").value(), -7);
  EXPECT_EQ(ParseInt32("+12").value(), 12);
  EXPECT_EQ(ParseInt32("0").value(), 0);
  EXPECT_EQ(ParseInt64("123456789012").value(), 123456789012LL);
}

TEST(Numbers, RejectsMalformedInput) {
  EXPECT_FALSE(ParseInt32("").ok());
  EXPECT_FALSE(ParseInt32("abc").ok());
  EXPECT_FALSE(ParseInt32("12x").ok());
  EXPECT_FALSE(ParseInt32("x12").ok());
  EXPECT_FALSE(ParseInt32(" 12").ok());
  EXPECT_FALSE(ParseInt32("1.5").ok());
  EXPECT_FALSE(ParseInt32("--3").ok());
}

TEST(Numbers, RejectsOutOfRange) {
  EXPECT_FALSE(ParseInt32("99999999999").ok());
  EXPECT_FALSE(ParseInt32("-99999999999").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
  EXPECT_EQ(ParseInt32("2147483647").value(), 2147483647);
  EXPECT_FALSE(ParseInt32("2147483648").ok());
}

}  // namespace
}  // namespace rav
