#!/bin/sh
# Exercises rav_cli's SIGINT contract end to end (docs/robustness.md):
#
#   first Ctrl-C   cooperative cancel — the run winds down at the next
#                  safe point and exits 5 (cancelled)
#   second Ctrl-C  the handler restored SIG_DFL on the first one, so the
#                  second kills the process (exit 128+SIGINT = 130)
#
# The vehicle is `rav_cli batch -` reading from a FIFO this script holds
# open: the process is deterministically alive (blocked in the read
# phase) when each signal lands, so neither case races the run's natural
# completion — the flaw with signalling a bounded search, which finishes
# in tens of milliseconds.
#
# Usage: cli_sigint_test.sh <rav_cli> <scratch-dir>
set -u

CLI="$1"
WORK="$2"
mkdir -p "$WORK"

fail() {
  echo "cli_sigint_test: FAIL: $1" >&2
  exit 1
}

require_alive() {
  kill -0 "$1" 2>/dev/null || fail "$2"
}

# --- case 1: one SIGINT -> cooperative cancel -> exit 5 -----------------
FIFO="$WORK/requests.fifo"
rm -f "$FIFO"
mkfifo "$FIFO" || fail "cannot create FIFO"

"$CLI" batch - <"$FIFO" >/dev/null 2>&1 &
pid=$!
# Hold the write end open so the batch reader stays blocked.
exec 3>"$FIFO"
printf '{"id":"r1","op":"stats"}\n' >&3

sleep 0.3
require_alive "$pid" "batch finished before the first SIGINT"
kill -INT "$pid"
sleep 0.3
# Cooperative: the handler only sets a flag; the process must still be
# draining/blocked, not signal-killed.
require_alive "$pid" "first SIGINT killed the process (should be cooperative)"
exec 3>&-   # EOF: the reader wakes, sees the cancel, winds down
wait "$pid"
got=$?
[ "$got" -eq 5 ] || fail "single SIGINT: exit $got, want 5 (cancelled)"
echo "-- single SIGINT: cooperative cancel, exit 5"

# --- case 2: two SIGINTs -> default disposition -> killed (130) ---------
rm -f "$FIFO"
mkfifo "$FIFO" || fail "cannot create FIFO"

"$CLI" batch - <"$FIFO" >/dev/null 2>&1 &
pid=$!
exec 3>"$FIFO"

sleep 0.3
require_alive "$pid" "batch finished before the second-SIGINT case"
kill -INT "$pid"          # handler: cancel + restore SIG_DFL
sleep 0.3
require_alive "$pid" "process died after one SIGINT in the double case"
kill -INT "$pid"          # default disposition now: kill
wait "$pid"
got=$?
exec 3>&-
rm -f "$FIFO"
[ "$got" -eq 130 ] || fail "double SIGINT: exit $got, want 130 (killed)"
echo "-- double SIGINT: SIG_DFL restored, killed with 130"

echo "cli_sigint_test: PASS"
