#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "era/run_check.h"
#include "projection/lemma21.h"
#include "projection/lr_bounded.h"
#include "projection/project_era.h"
#include "projection/project_ra.h"
#include "projection/prop22.h"
#include "ra/simulate.h"
#include "ra/transform.h"
#include "test_util.h"

namespace rav {
namespace {

using testing::MakeAllDistinct;
using testing::MakeExample1;
using testing::MakeExample5;

// Value traces (flattened, first `m` registers, first `keep_len` positions)
// of prefix-valid runs of an extended automaton over `pool`. Runs are
// enumerated at length keep_len + 1 and trimmed by one position so that
// every kept position's constraints are enforced by an in-prefix
// transition (deferred-enforcement constructions like Proposition 6 check
// position n while firing the transition n → n+1).
std::set<std::vector<DataValue>> EraTraces(const ExtendedAutomaton& era,
                                           size_t keep_len,
                                           const std::vector<DataValue>& pool,
                                           int m) {
  std::set<std::vector<DataValue>> out;
  Database db{era.automaton().schema()};
  EnumerateRuns(era.automaton(), db, keep_len + 1, pool,
                [&](const FiniteRun& run) {
                  if (!CheckFiniteRunConstraints(era, run).ok()) return true;
                  std::vector<DataValue> flat;
                  for (size_t n = 0; n < keep_len; ++n) {
                    flat.insert(flat.end(), run.values[n].begin(),
                                run.values[n].begin() + m);
                  }
                  out.insert(std::move(flat));
                  return true;
                });
  return out;
}

// --- Lemma 21 ---

TEST(Lemma21Test, RequiresStateDriven) {
  RegisterAutomaton a = Completed(MakeExample1()).value();
  EXPECT_FALSE(PropagationAutomata::Build(a).ok());  // not state-driven
}

TEST(Lemma21Test, AgreesWithClosureOnSampledTraces) {
  RegisterAutomaton sd = MakeStateDriven(Completed(MakeExample1()).value());
  auto propagation = PropagationAutomata::Build(sd);
  ASSERT_TRUE(propagation.ok()) << propagation.status().ToString();
  const int k = sd.num_registers();

  // Sample symbolic control lassos; for each pumped window compare the
  // DFA verdicts against the ground-truth closure.
  ExtendedAutomaton plain(sd);  // no constraints: closure is ~ itself
  ControlAlphabet alpha(plain.automaton());
  Nba scontrol = BuildSControlNba(plain.automaton(), alpha);
  size_t lassos = 0;
  scontrol.EnumerateAcceptingLassos(6, 12, [&](const LassoWord& lasso) {
    ++lassos;
    const size_t window = lasso.prefix.size() + lasso.cycle.size() * 3;
    ConstraintClosure closure(plain, alpha, lasso, window);
    // State word of the window.
    std::vector<int> states;
    for (size_t n = 0; n < window; ++n) {
      states.push_back(alpha.state_of(SymbolId(lasso.SymbolAt(n))).value());
    }
    for (size_t a_pos = 0; a_pos < window; ++a_pos) {
      for (size_t b_pos = a_pos; b_pos < window; ++b_pos) {
        std::vector<int> factor(states.begin() + a_pos,
                                states.begin() + b_pos + 1);
        for (int i = 0; i < k; ++i) {
          for (int j = 0; j < k; ++j) {
            bool same = closure.ClassOf(closure.NodeOf(a_pos, i)) ==
                        closure.ClassOf(closure.NodeOf(b_pos, j));
            EXPECT_EQ(propagation->EqualityDfa(i, j).Accepts(factor), same)
                << "eq i=" << i << " j=" << j << " a=" << a_pos
                << " b=" << b_pos;
          }
        }
      }
    }
    return true;
  });
  EXPECT_GT(lassos, 0u);
}

TEST(Lemma21Test, InequalityDfaSoundOnCompleteAutomaton) {
  // For a complete automaton, forced-distinct and forced-equal partition
  // all pairs reachable through live value chains. Spot-check on the
  // 1-register automaton with guard x1 ≠ y1 (consecutive distinct).
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddNeq(b.X(0), b.Y(0));
  a.AddTransition(q, b.Build().value(), q);
  RegisterAutomaton sd = MakeStateDriven(Completed(a).value());
  auto propagation = PropagationAutomata::Build(sd);
  ASSERT_TRUE(propagation.ok());
  // Factor q q (adjacent positions): forced distinct; q q q: unrelated.
  std::vector<int> qq = {0, 0};
  std::vector<int> qqq = {0, 0, 0};
  EXPECT_TRUE(propagation->InequalityDfa(0, 0).Accepts(qq));
  EXPECT_FALSE(propagation->InequalityDfa(0, 0).Accepts(qqq));
  EXPECT_FALSE(propagation->EqualityDfa(0, 0).Accepts(qq));
  // Single position: register equals itself.
  EXPECT_TRUE(propagation->EqualityDfa(0, 0).Accepts({0}));
}

// --- Proposition 20 ---

TEST(Prop20Test, Example1ProjectionMatchesByEnumeration) {
  RegisterAutomaton a = MakeExample1();
  Prop20Stats stats;
  auto projected = ProjectRegisterAutomaton(a, 1, &stats);
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  EXPECT_GT(stats.num_constraints, 0);

  // Ground truth: Π₁ of A's runs. A side gets extra fresh values so the
  // hidden register can range freely; visible traces are filtered to the
  // common pool.
  const size_t keep_len = 4;
  std::vector<DataValue> pool = {0, 1};
  std::vector<DataValue> pool_big = {0, 1, 10, 11, 12, 13, 14};
  ExtendedAutomaton plain{PruneFrontierIncompatibleTransitions(
      MakeStateDriven(Completed(a).value()))};
  std::set<std::vector<DataValue>> truth;
  for (auto& trace : EraTraces(plain, keep_len, pool_big, 1)) {
    bool in_pool = true;
    for (DataValue v : trace) {
      in_pool = in_pool && (v == 0 || v == 1);
    }
    if (in_pool) truth.insert(trace);
  }
  std::set<std::vector<DataValue>> via_projection =
      EraTraces(*projected, keep_len, pool, 1);
  EXPECT_EQ(truth, via_projection);
}

TEST(Prop20Test, ProjectionIsLrBounded) {
  auto projected = ProjectRegisterAutomaton(MakeExample1(), 1);
  ASSERT_TRUE(projected.ok());
  ControlAlphabet alpha(projected->automaton());
  LrBoundOptions options;
  options.max_lassos = 24;
  auto bound = EstimateLrBound(*projected, alpha, options);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_FALSE(bound->growth_detected);
  EXPECT_LE(bound->max_cover, MakeExample1().num_registers());
}

TEST(Prop20Test, FullProjectionKeepsAllRegisters) {
  // m = k: the "projection" is the identity up to completion; traces match.
  RegisterAutomaton a = MakeExample1();
  auto projected = ProjectRegisterAutomaton(a, 2);
  ASSERT_TRUE(projected.ok());
  const size_t keep_len = 3;
  std::vector<DataValue> pool = {0, 1, 2};
  ExtendedAutomaton plain{PruneFrontierIncompatibleTransitions(
      MakeStateDriven(Completed(a).value()))};
  EXPECT_EQ(EraTraces(plain, keep_len, pool, 2),
            EraTraces(*projected, keep_len, pool, 2));
}

// --- LR-boundedness (Definition 15 / Theorem 18 / Examples 16, 17) ---

TEST(LrBoundTest, BipartiteCoverViaKoenig) {
  // Path edges (0-0'),(1-0'),(1-1'): max matching 2, min cover 2.
  EXPECT_EQ(BipartiteMinVertexCover(2, 2, {{0, 0}, {1, 0}, {1, 1}}), 2);
  // Star: 1.
  EXPECT_EQ(BipartiteMinVertexCover(1, 5,
                                    {{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}}),
            1);
  EXPECT_EQ(BipartiteMinVertexCover(3, 3, {}), 0);
}

TEST(LrBoundTest, Example16ConsecutiveDistinctIsBounded) {
  // 1-register automaton with x1 ≠ y1: LR-bounded (cover 1).
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddNeq(b.X(0), b.Y(0));
  a.AddTransition(q, b.Build().value(), q);
  ExtendedAutomaton era{MakeStateDriven(Completed(a).value())};
  ControlAlphabet alpha(era.automaton());
  auto bound = EstimateLrBound(era, alpha);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->growth_detected);
  EXPECT_EQ(bound->max_cover, 1);
}

TEST(LrBoundTest, Example17AllDistinctGrows) {
  ExtendedAutomaton era = MakeAllDistinct();
  ControlAlphabet alpha(era.automaton());
  auto bound = EstimateLrBound(era, alpha);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->growth_detected);
}

// --- Proposition 22 ---

TEST(Prop22Test, LongestWordLength) {
  // Over a 1-state automaton alphabet {q}: "q q" has longest word 2.
  RegisterAutomaton a(1, Schema());
  a.AddState("q");
  auto r = Regex::Parse("q q", [](const std::string&) { return 0; });
  ASSERT_TRUE(r.ok());
  Dfa d = r->ToDfa(1);
  EXPECT_EQ(LongestAcceptedWordLength(d).value(), 2);
  auto star = Regex::Parse("q q*", [](const std::string&) { return 0; });
  EXPECT_FALSE(LongestAcceptedWordLength(star->ToDfa(1)).ok());
}

ExtendedAutomaton MakeConsecutiveDistinctEra() {
  RegisterAutomaton b(1, Schema());
  StateId q = b.AddState("q");
  b.SetInitial(q);
  b.SetFinal(q);
  b.AddTransition(q, b.NewGuardBuilder().Build().value(), q);
  ExtendedAutomaton era(std::move(b));
  Status s = era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                       /*is_equality=*/false, "q q");
  RAV_CHECK(s.ok());
  return era;
}

TEST(Prop22Test, RealizesConsecutiveDistinct) {
  ExtendedAutomaton era = MakeConsecutiveDistinctEra();
  Prop22Stats stats;
  auto realized = RealizeLrBoundedEra(era, &stats);
  ASSERT_TRUE(realized.ok()) << realized.status().ToString();
  EXPECT_EQ(stats.window_length, 2);
  EXPECT_EQ(stats.registers_after, 2);

  // Π₁(Reg(realized)) equals Reg(era), by enumeration.
  const size_t keep_len = 4;
  std::vector<DataValue> pool = {0, 1, 2};
  std::set<std::vector<DataValue>> truth = EraTraces(era, keep_len, pool, 1);
  ExtendedAutomaton realized_plain(*realized);
  std::set<std::vector<DataValue>> via =
      EraTraces(realized_plain, keep_len, pool, 1);
  EXPECT_EQ(truth, via);
}

TEST(Prop22Test, RejectsInfiniteWindowConstraints) {
  ExtendedAutomaton era = MakeAllDistinct();
  auto realized = RealizeLrBoundedEra(era);
  ASSERT_FALSE(realized.ok());
  EXPECT_EQ(realized.status().code(), StatusCode::kUnimplemented);
}

TEST(Prop22Test, RejectsEqualityConstraints) {
  ExtendedAutomaton era = MakeExample5();
  EXPECT_EQ(RealizeLrBoundedEra(era).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Prop22Test, PaperBudgetFormula) {
  Prop22Stats stats;
  EXPECT_EQ(stats.paper_budget_for(1), 9);    // M = 2: 2·4 + 1
  EXPECT_EQ(stats.paper_budget_for(2), 19);   // M = 3: 2·9 + 1
}

// --- Theorem 13 ---

TEST(Theorem13Test, ProjectionOfEraWithEqualityConstraint) {
  // 2-register automaton, single state, guard propagating register 2
  // (x2 = y2). Project to register 1: trivially all sequences; with an
  // extra constraint forcing register 1 to equal register 2 at q-steps...
  // Keep it simple: ERA = Example 1 automaton with no extra constraints,
  // projected via Theorem 13, must agree with Proposition 20.
  RegisterAutomaton a = MakeStateDriven(Completed(MakeExample1()).value());
  ExtendedAutomaton era(a);
  Theorem13Stats stats;
  auto via_thm13 = ProjectExtendedAutomaton(era, 1, &stats);
  ASSERT_TRUE(via_thm13.ok()) << via_thm13.status().ToString();

  const size_t keep_len = 4;
  std::vector<DataValue> pool = {0, 1};
  std::vector<DataValue> pool_big = {0, 1, 10, 11, 12, 13, 14};
  std::set<std::vector<DataValue>> truth;
  for (auto& trace : EraTraces(era, keep_len, pool_big, 1)) {
    bool in_pool = true;
    for (DataValue v : trace) in_pool = in_pool && (v == 0 || v == 1);
    if (in_pool) truth.insert(trace);
  }
  EXPECT_EQ(truth, EraTraces(*via_thm13, keep_len, pool, 1));
}

TEST(Theorem13Test, ProjectionWithInequalityConstraint) {
  // 2-register automaton, one state q, trivial guard; constraint: the
  // *hidden* register 2 values at consecutive positions are distinct, and
  // register 2 equals register 1 locally (guard x1 = x2). Projecting to
  // register 1 must then force consecutive distinct visible values.
  RegisterAutomaton a(2, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder g = a.NewGuardBuilder();
  g.AddEq(g.X(0), g.X(1));  // x1 = x2 at every position
  a.AddTransition(q, g.Build().value(), q);
  ExtendedAutomaton era(MakeStateDriven(a));
  const RegisterPair r11{RegisterId(1), RegisterId(1)};
  ASSERT_TRUE(era.AddConstraintFromText(r11, false, "q0 q0").ok() ||
              era.AddConstraintFromText(r11, false, ". .").ok());

  auto projected = ProjectExtendedAutomaton(era, 1);
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();

  const size_t keep_len = 4;
  std::vector<DataValue> pool = {0, 1, 2};
  std::set<std::vector<DataValue>> truth = EraTraces(era, keep_len, pool, 1);
  EXPECT_EQ(truth, EraTraces(*projected, keep_len, pool, 1));
}

}  // namespace
}  // namespace rav
