// Compiled with RAV_NO_METRICS (see tests/CMakeLists.txt): proves the
// observability headers are self-contained no-op stubs under the kill
// switch — every macro and API compiles, snapshots are empty, and the TU
// links without the metrics/trace implementation (their .cc bodies are
// compiled out entirely).

#ifndef RAV_NO_METRICS
#error "this smoke test must be compiled with -DRAV_NO_METRICS"
#endif

#include <cstdio>

#include "base/metrics.h"
#include "base/trace.h"

int main() {
  RAV_METRIC_COUNT("smoke/counter", 1);
  RAV_METRIC_SET("smoke/gauge", 42);
  RAV_METRIC_RECORD("smoke/histogram", 7);
  rav::metrics::GetCounter("smoke/handle").Add(3);
  {
    RAV_TRACE_SPAN("smoke/outer");
    RAV_TRACE_SPAN("inner");
  }
  if (!rav::metrics::Snapshot().empty() || !rav::trace::Snapshot().empty()) {
    std::fprintf(stderr, "no-op build produced metrics\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
