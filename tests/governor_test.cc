// Tests of the resource-governed execution layer (docs/robustness.md):
// the ExecutionGovernor itself, the failpoint layer, the CLI limit
// parsers, Arena budget accounting, governor trips inside the decision
// procedures (deadline mid-search, cross-thread cancellation, memory
// budget in complementation, worker-spawn degradation), and the
// randomized differential that an armed-but-untripped governor never
// changes a verdict.

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>

#include "automata/complement.h"
#include "base/arena.h"
#include "base/failpoints.h"
#include "base/governor.h"
#include "base/numbers.h"
#include "era/emptiness.h"
#include "io/text_format.h"
#include "ra/random.h"
#include "ra/transform.h"

namespace rav {
namespace {

// --- ExecutionGovernor unit tests ---

TEST(GovernorTest, UnlimitedByDefault) {
  ExecutionGovernor g;
  EXPECT_FALSE(g.has_deadline());
  EXPECT_FALSE(g.has_memory_budget());
  EXPECT_EQ(g.Check(), GovernorTrip::kNone);
  EXPECT_TRUE(g.CheckStatus("test").ok());
  EXPECT_EQ(g.trip(), GovernorTrip::kNone);
  // nullptr is the unlimited governor for the helpers.
  EXPECT_EQ(GovernorCheck(nullptr), GovernorTrip::kNone);
  EXPECT_TRUE(GovernorCheckStatus(nullptr, "test").ok());
}

TEST(GovernorTest, ExpiredDeadlineTripsAndSticks) {
  ExecutionGovernor g;
  g.set_deadline(ExecutionGovernor::Clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(g.has_deadline());
  EXPECT_EQ(g.Check(), GovernorTrip::kDeadline);
  EXPECT_EQ(g.trip(), GovernorTrip::kDeadline);
  // Sticky: later limit changes cannot untrip it.
  g.set_deadline_after(std::chrono::hours(1));
  EXPECT_EQ(g.Check(), GovernorTrip::kDeadline);
}

TEST(GovernorTest, MemoryBudgetTripsOnLiveBytes) {
  ExecutionGovernor g;
  g.set_memory_budget(1000);
  g.ChargeBytes(600);
  EXPECT_EQ(g.Check(), GovernorTrip::kNone);
  g.ChargeBytes(600);
  EXPECT_EQ(g.live_bytes(), 1200u);
  EXPECT_EQ(g.peak_bytes(), 1200u);
  EXPECT_EQ(g.Check(), GovernorTrip::kMemoryBudget);
  // Releasing below the budget does not untrip — the first trip is the
  // procedure's answer.
  g.ReleaseBytes(1200);
  EXPECT_EQ(g.live_bytes(), 0u);
  EXPECT_EQ(g.peak_bytes(), 1200u);
  EXPECT_EQ(g.Check(), GovernorTrip::kMemoryBudget);
}

TEST(GovernorTest, CancellationOutranksResourceTrips) {
  ExecutionGovernor g;
  g.set_memory_budget(10);
  g.RequestCancel();
  // An over-budget charge lands after the cancel request: the recorded
  // trip is still the user's decision, not the budget.
  g.ChargeBytes(100);
  EXPECT_EQ(g.Check(), GovernorTrip::kCancelled);
  EXPECT_EQ(g.trip(), GovernorTrip::kCancelled);
}

TEST(GovernorTest, CheckStatusNamesTheTripAndTheSite) {
  ExecutionGovernor g;
  g.set_deadline(ExecutionGovernor::Clock::now() - std::chrono::seconds(1));
  Status s = g.CheckStatus("ComplementNba");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("deadline"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("ComplementNba"), std::string::npos)
      << s.ToString();
}

TEST(GovernorTest, CrossThreadCancelIsObserved) {
  ExecutionGovernor g;
  std::thread canceller([&g] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    g.RequestCancel();
  });
  GovernorTrip trip = GovernorTrip::kNone;
  while ((trip = g.Check()) == GovernorTrip::kNone) {
    std::this_thread::yield();
  }
  canceller.join();
  EXPECT_EQ(trip, GovernorTrip::kCancelled);
}

TEST(GovernorTest, TripNames) {
  EXPECT_STREQ(GovernorTripName(GovernorTrip::kNone), "none");
  EXPECT_STREQ(GovernorTripName(GovernorTrip::kDeadline), "deadline");
  EXPECT_STREQ(GovernorTripName(GovernorTrip::kMemoryBudget),
               "memory-budget");
  EXPECT_STREQ(GovernorTripName(GovernorTrip::kCancelled), "cancelled");
}

TEST(ScopedMemoryChargeTest, BalancesOnDestruction) {
  ExecutionGovernor g;
  {
    ScopedMemoryCharge charge(&g, 100);
    charge.Add(50);
    EXPECT_EQ(charge.charged(), 150u);
    EXPECT_EQ(g.live_bytes(), 150u);
  }
  EXPECT_EQ(g.live_bytes(), 0u);
  EXPECT_EQ(g.peak_bytes(), 150u);
  // A nullptr governor is a no-op charge.
  ScopedMemoryCharge unlimited(nullptr, 100);
  EXPECT_EQ(unlimited.charged(), 0u);
}

// --- Arena accounting ---

TEST(ArenaTest, TracksBlocksAndTotalBytes) {
  Arena arena(/*block_bytes=*/1024);
  EXPECT_EQ(arena.block_count(), 0u);
  EXPECT_EQ(arena.total_allocated(), 0u);
  arena.Allocate(100);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.total_allocated(), 1024u);
  arena.Allocate(4096);  // oversized allocation forces a dedicated block
  EXPECT_EQ(arena.block_count(), 2u);
  EXPECT_GE(arena.total_allocated(), 1024u + 4096u);
  EXPECT_EQ(arena.bytes_allocated(), 100u + 4096u);
  arena.Reset();
  EXPECT_EQ(arena.block_count(), 0u);
  EXPECT_EQ(arena.total_allocated(), 0u);
}

TEST(ArenaTest, ChargesGovernorPerBlockAndReleasesOnReset) {
  ExecutionGovernor g;
  Arena arena(/*block_bytes=*/1024);
  arena.Allocate(100);  // a block held before the governor attaches
  arena.set_governor(&g);
  EXPECT_EQ(g.live_bytes(), arena.total_allocated());  // retroactive charge
  arena.Allocate(8192);
  EXPECT_EQ(g.live_bytes(), arena.total_allocated());
  const size_t peak = g.peak_bytes();
  arena.Reset();
  EXPECT_EQ(g.live_bytes(), 0u);
  EXPECT_EQ(g.peak_bytes(), peak);
}

TEST(ArenaTest, BudgetTripsAtBlockGrowth) {
  ExecutionGovernor g;
  g.set_memory_budget(2048);
  Arena arena(/*block_bytes=*/1024);
  arena.set_governor(&g);
  for (int i = 0; i < 8; ++i) arena.Allocate(1000);
  EXPECT_EQ(g.Check(), GovernorTrip::kMemoryBudget);
}

// --- Failpoints ---

TEST(FailpointsTest, FiresOnNthHitThenDisarms) {
  failpoints::DisarmAll();
  failpoints::Arm("test/governor_test/site", 3);
  EXPECT_TRUE(failpoints::AnyArmed());
  EXPECT_FALSE(RAV_FAILPOINT("test/governor_test/site"));
  EXPECT_FALSE(RAV_FAILPOINT("test/governor_test/site"));
  EXPECT_TRUE(RAV_FAILPOINT("test/governor_test/site"));
  // Fired once, now disarmed: the fourth hit is clean.
  EXPECT_FALSE(RAV_FAILPOINT("test/governor_test/site"));
  failpoints::DisarmAll();
}

TEST(FailpointsTest, SitesAreIndependentAndArmZeroDisarms) {
  failpoints::DisarmAll();
  failpoints::Arm("test/governor_test/a", 1);
  failpoints::Arm("test/governor_test/b", 1);
  failpoints::Arm("test/governor_test/b", 0);  // disarm b again
  EXPECT_FALSE(RAV_FAILPOINT("test/governor_test/b"));
  EXPECT_TRUE(RAV_FAILPOINT("test/governor_test/a"));
  failpoints::DisarmAll();
  EXPECT_FALSE(failpoints::AnyArmed());
}

TEST(FailpointsTest, ParseSiteInjectsAParseError) {
  failpoints::DisarmAll();
  const std::string spec =
      "automaton { registers 1 state q initial final }";
  ASSERT_TRUE(ParseExtendedAutomaton(spec).ok());
  failpoints::Arm("io/text_format/parse", 1);
  Result<ExtendedAutomaton> injected = ParseExtendedAutomaton(spec);
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.status().code(), StatusCode::kInvalidArgument);
  // Fire-once: the very next parse is healthy again.
  EXPECT_TRUE(ParseExtendedAutomaton(spec).ok());
  failpoints::DisarmAll();
}

// --- CLI limit parsers ---

TEST(NumbersTest, ParseDurationMs) {
  EXPECT_EQ(*ParseDurationMs("250ms"), 250);
  EXPECT_EQ(*ParseDurationMs("10s"), 10000);
  EXPECT_EQ(*ParseDurationMs("2m"), 120000);
  EXPECT_EQ(*ParseDurationMs("0ms"), 0);
  EXPECT_FALSE(ParseDurationMs("").ok());
  EXPECT_FALSE(ParseDurationMs("10").ok());    // suffix is required
  EXPECT_FALSE(ParseDurationMs("10h").ok());   // unknown unit
  EXPECT_FALSE(ParseDurationMs("-5s").ok());   // negative
  EXPECT_FALSE(ParseDurationMs("ms").ok());    // no digits
  EXPECT_FALSE(ParseDurationMs("999999999999999999m").ok());  // overflow
}

TEST(NumbersTest, ParseByteSize) {
  EXPECT_EQ(*ParseByteSize("1048576"), 1048576);
  EXPECT_EQ(*ParseByteSize("64k"), 64 * 1024);
  EXPECT_EQ(*ParseByteSize("512m"), 512ll * 1024 * 1024);
  EXPECT_EQ(*ParseByteSize("2g"), 2ll * 1024 * 1024 * 1024);
  EXPECT_EQ(*ParseByteSize("64K"), 64 * 1024);  // case-insensitive
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("x").ok());
  EXPECT_FALSE(ParseByteSize("-1").ok());
  EXPECT_FALSE(ParseByteSize("10t").ok());  // unknown unit
  EXPECT_FALSE(ParseByteSize("999999999999999999g").ok());  // overflow
}

// --- Governed decision procedures ---

// An extended automaton that is EMPTY but whose bounded lasso search has
// a huge candidate space: a complete digraph on 8 states with both the
// x1=y1 and x1!=y1 guard on every edge (so the control alphabet has 128
// symbols and the simple-path space explodes combinatorially), plus a
// constraint DFA accepting every factor with a disequality e≠₁₁ — every
// length-1 factor demands x1 != x1, so every candidate closure is
// inconsistent and the searcher must wade through the whole enumeration
// to conclude emptiness. The worst case a budget is for.
ExtendedAutomaton BigEmptySpace() {
  const int n = 8;
  std::string spec = "automaton {\n  registers 1\n";
  for (int s = 0; s < n; ++s) {
    spec += "  state q" + std::to_string(s) +
            (s == 0 ? " initial final\n" : " final\n");
  }
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      const std::string edge =
          "  transition q" + std::to_string(s) + " -> q" + std::to_string(t);
      spec += edge + " { x1 = y1 }\n";
      spec += edge + " { x1 != y1 }\n";
    }
  }
  spec += "}\n";
  auto era = ParseExtendedAutomaton(spec);
  RAV_CHECK(era.ok());
  Dfa every_factor(/*alphabet_size=*/n, /*num_states=*/1, /*initial=*/0);
  for (int a = 0; a < n; ++a) every_factor.SetTransition(0, a, 0);
  every_factor.SetAccepting(0, true);
  RAV_CHECK(era->AddConstraintDfa(RegisterPair{RegisterId(0), RegisterId(0)},
                                  /*is_equality=*/false,
                                  std::move(every_factor))
                .ok());
  return *std::move(era);
}

EraEmptinessOptions BigSearchOptions(const ExecutionGovernor* governor) {
  EraEmptinessOptions options;
  // Enough candidates that the ungoverned search runs for ~a second, so
  // a 10ms budget reliably trips mid-search — while the enumeration
  // bounds still end the test in finite time if the governor were broken
  // (the run then stops on kLassoBudget and the assertions fail cleanly).
  options.max_lassos = 300000;
  options.max_search_steps = 30000000;
  options.analyze_and_strip = false;
  options.governor = governor;
  return options;
}

TEST(GovernedSearchTest, ExpiredDeadlineTruncatesWithPartialStats) {
  ExtendedAutomaton era = BigEmptySpace();
  ControlAlphabet alphabet(era.automaton());
  ExecutionGovernor governor;
  governor.set_deadline(ExecutionGovernor::Clock::now() -
                        std::chrono::milliseconds(1));
  auto result =
      CheckEraEmptiness(era, alphabet, BigSearchOptions(&governor));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kDeadline);
  EXPECT_TRUE(result->stats.truncated());
}

TEST(GovernedSearchTest, DeadlineFiresMidSearch) {
  ExtendedAutomaton era = BigEmptySpace();
  ControlAlphabet alphabet(era.automaton());
  ExecutionGovernor governor;
  governor.set_deadline_after(std::chrono::milliseconds(10));
  auto result =
      CheckEraEmptiness(era, alphabet, BigSearchOptions(&governor));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kDeadline);
  // Partial results: the search got somewhere before the trip.
  EXPECT_GT(result->stats.lassos_enumerated, 0u);
}

TEST(GovernedSearchTest, CrossThreadCancelStopsParallelSearch) {
  ExtendedAutomaton era = BigEmptySpace();
  ControlAlphabet alphabet(era.automaton());
  ExecutionGovernor governor;
  EraEmptinessOptions options = BigSearchOptions(&governor);
  options.num_workers = 4;
  std::thread canceller([&governor] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    governor.RequestCancel();
  });
  auto result = CheckEraEmptiness(era, alphabet, options);
  canceller.join();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kCancelled);
}

TEST(GovernedSearchTest, TinyBudgetsNeverCrashAndStayTruthful) {
  // The acceptance stress: a 10ms deadline plus a 1MiB budget on a large
  // search space must produce a truthful truncated verdict with partial
  // results — never a crash, hang, or silent "definitive EMPTY".
  ExtendedAutomaton era = BigEmptySpace();
  ControlAlphabet alphabet(era.automaton());
  ExecutionGovernor governor;
  governor.set_deadline_after(std::chrono::milliseconds(10));
  governor.set_memory_budget(1 << 20);
  auto result =
      CheckEraEmptiness(era, alphabet, BigSearchOptions(&governor));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_TRUE(result->stats.stop_reason == SearchStopReason::kDeadline ||
              result->stats.stop_reason == SearchStopReason::kMemoryBudget)
      << SearchStopReasonName(result->stats.stop_reason);
  EXPECT_GT(result->stats.lassos_enumerated, 0u);
}

TEST(GovernorTest, TransientOverBudgetChargeTripsSticky) {
  // A spike that is charged and fully released between two polls must
  // still trip: the budget bounds the high-water mark, not whatever
  // happens to be live when Check() runs.
  ExecutionGovernor g;
  g.set_memory_budget(1024);
  { ScopedMemoryCharge spike(&g, 4096); }
  EXPECT_EQ(g.live_bytes(), 0u);
  EXPECT_EQ(g.Check(), GovernorTrip::kMemoryBudget);
}

TEST(GovernedSearchTest, MemoryBudgetAloneStopsTheSearch) {
  // Regression: per-candidate closure charges are released before the
  // next safe-point poll, so a budget smaller than one closure used to
  // slip through an entire search. No deadline here — the budget must
  // stop it by itself.
  ExtendedAutomaton era = BigEmptySpace();
  ControlAlphabet alphabet(era.automaton());
  ExecutionGovernor governor;
  governor.set_memory_budget(1);
  auto result =
      CheckEraEmptiness(era, alphabet, BigSearchOptions(&governor));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kMemoryBudget);
  EXPECT_LT(result->stats.lassos_enumerated, 100u);
}

TEST(GovernedSearchTest, WitnessBeatsGovernorTrip) {
  // The first candidate is a witness, and evaluating it charges more
  // memory than the entire budget: the witness still wins — a trip only
  // stops further search, it never discards completed real work.
  auto era = ParseExtendedAutomaton(
      "automaton {\n"
      "  registers 1\n"
      "  state q initial final\n"
      "  transition q -> q { x1 = y1 }\n"
      "  transition q -> q { x1 != y1 }\n"
      "}\n");
  ASSERT_TRUE(era.ok());
  ControlAlphabet alphabet(era->automaton());
  ExecutionGovernor governor;
  governor.set_memory_budget(1);
  EraEmptinessOptions options;
  options.analyze_and_strip = false;
  options.governor = &governor;
  auto result = CheckEraEmptiness(*era, alphabet, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->nonempty);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kWitnessFound);
}

TEST(GovernedSearchTest, PreCancelledGovernorStopsBeforeAnyEvaluation) {
  ExtendedAutomaton era = BigEmptySpace();
  ControlAlphabet alphabet(era.automaton());
  ExecutionGovernor governor;
  governor.RequestCancel();
  auto result =
      CheckEraEmptiness(era, alphabet, BigSearchOptions(&governor));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->nonempty);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kCancelled);
  EXPECT_EQ(result->stats.lassos_checked, 0u);
}

TEST(GovernedComplementTest, MemoryBudgetTripsComplementation) {
  // A dense all-accepting NBA: the rank-state space explodes, and the
  // per-state charge must trip a small budget long before max_states.
  const int n = 5;
  Nba nba(2);
  for (int s = 0; s < n; ++s) nba.AddState();
  nba.SetInitial(0);
  for (int s = 0; s < n; ++s) {
    nba.SetAccepting(s, true);
    for (int a = 0; a < 2; ++a) {
      nba.AddTransition(s, a, (s + a + 1) % n);
      nba.AddTransition(s, a, (s + 3 * a) % n);
    }
  }
  // Ungoverned (and unbudgeted by max_states), the construction succeeds
  // and interns well over a thousand rank-states...
  auto ungoverned = ComplementNba(nba, /*max_states=*/2000000);
  ASSERT_TRUE(ungoverned.ok());
  EXPECT_GT(ungoverned->num_states(), 100);
  // ...so a small byte budget must trip it long before completion.
  ExecutionGovernor governor;
  governor.set_memory_budget(8 * 1024);
  auto complement = ComplementNba(nba, /*max_states=*/2000000, &governor);
  ASSERT_FALSE(complement.ok());
  EXPECT_EQ(complement.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.trip(), GovernorTrip::kMemoryBudget);
}

TEST(GovernedSearchTest, WorkerSpawnFailureDegradesNotFails) {
  failpoints::DisarmAll();
  ExtendedAutomaton era = BigEmptySpace();
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.max_lassos = 50;
  options.analyze_and_strip = false;
  options.num_workers = 4;
  auto healthy = CheckEraEmptiness(era, alphabet, options);
  ASSERT_TRUE(healthy.ok());

  // First spawn attempt fails: the pool degrades all the way to the
  // inline serial path; verdict and stop reason are unchanged.
  failpoints::Arm("era/search/worker_spawn", 1);
  auto degraded = CheckEraEmptiness(era, alphabet, options);
  failpoints::DisarmAll();
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->nonempty, healthy->nonempty);
  EXPECT_EQ(degraded->stats.stop_reason, healthy->stats.stop_reason);
  EXPECT_EQ(degraded->stats.workers, 1);

  // Second spawn attempt fails: a partial pool of one worker carries on.
  failpoints::Arm("era/search/worker_spawn", 2);
  auto partial = CheckEraEmptiness(era, alphabet, options);
  failpoints::DisarmAll();
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->nonempty, healthy->nonempty);
  EXPECT_EQ(partial->stats.stop_reason, healthy->stats.stop_reason);
  EXPECT_EQ(partial->stats.workers, 1);
}

// --- Randomized differential: a governor that never trips is invisible ---

Dfa RandomConstraintDfa(std::mt19937& rng, int alphabet_size) {
  std::uniform_int_distribution<int> num_states_dist(1, 5);
  const int n = num_states_dist(rng);
  std::uniform_int_distribution<int> state_dist(0, n - 1);
  Dfa dfa(alphabet_size, n, state_dist(rng));
  std::uniform_int_distribution<int> accept_dist(0, 3);
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < alphabet_size; ++a) {
      dfa.SetTransition(s, a, state_dist(rng));
    }
    dfa.SetAccepting(s, accept_dist(rng) == 0);
  }
  return dfa;
}

ExtendedAutomaton RandomCompleteEra(std::mt19937& rng) {
  RandomAutomatonOptions options;
  options.num_registers = std::uniform_int_distribution<int>(1, 3)(rng);
  options.num_states = std::uniform_int_distribution<int>(2, 4)(rng);
  options.num_transitions = 2 * options.num_states;
  RegisterAutomaton a = RandomAutomaton(rng, options);
  Result<RegisterAutomaton> completed = Completed(a);
  RAV_CHECK(completed.ok());
  const int num_states = completed->num_states();
  const int k = completed->num_registers();
  ExtendedAutomaton era(*std::move(completed));
  std::uniform_int_distribution<int> reg_pick(0, k - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const int nc = std::uniform_int_distribution<int>(1, 3)(rng);
  for (int c = 0; c < nc; ++c) {
    const RegisterPair regs{RegisterId(reg_pick(rng)),
                            RegisterId(reg_pick(rng))};
    RAV_CHECK(era.AddConstraintDfa(regs, /*is_equality=*/coin(rng) == 1,
                                   RandomConstraintDfa(rng, num_states))
                  .ok());
  }
  return era;
}

TEST(GovernorDifferentialTest, UntrippedGovernorNeverChangesTheVerdict) {
  std::mt19937 rng(20260806);
  for (int iteration = 0; iteration < 100; ++iteration) {
    ExtendedAutomaton era = RandomCompleteEra(rng);
    ControlAlphabet alphabet(era.automaton());
    EraEmptinessOptions ungoverned;
    ungoverned.max_lassos = 200;
    ungoverned.max_search_steps = 20000;
    auto baseline = CheckEraEmptiness(era, alphabet, ungoverned);
    ASSERT_TRUE(baseline.ok());

    ExecutionGovernor governor;  // armed into the run, but unlimited
    EraEmptinessOptions governed = ungoverned;
    governed.governor = &governor;
    auto result = CheckEraEmptiness(era, alphabet, governed);
    ASSERT_TRUE(result.ok());

    EXPECT_EQ(result->nonempty, baseline->nonempty) << "iter " << iteration;
    EXPECT_EQ(result->search_truncated, baseline->search_truncated)
        << "iter " << iteration;
    EXPECT_EQ(result->stats.stop_reason, baseline->stats.stop_reason)
        << "iter " << iteration;
    if (baseline->nonempty) {
      EXPECT_EQ(result->control_word.ToString(),
                baseline->control_word.ToString())
          << "iter " << iteration;
    }
    EXPECT_EQ(governor.trip(), GovernorTrip::kNone);
  }
}

}  // namespace
}  // namespace rav
