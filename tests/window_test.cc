// Exactness tests for the windowed checks on lasso runs: violations that
// only materialize beyond the spine (in the unrolling) must be caught by
// the documented window bound spine + 2·period·|dfa|.

#include <gtest/gtest.h>

#include "era/run_check.h"
#include "test_util.h"

namespace rav {
namespace {

// One state, free transition; constraint relating positions at distance
// exactly `gap`.
ExtendedAutomaton MakeGapEquality(int gap, bool equality) {
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  ExtendedAutomaton era(std::move(a));
  std::string expr = "q";
  for (int i = 0; i < gap; ++i) expr += " q";
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                      equality, expr)
                .ok());
  return era;
}

LassoRun CycleRun(std::vector<DataValue> values) {
  LassoRun run;
  for (DataValue v : values) {
    run.spine.values.push_back({v});
    run.spine.states.push_back(StateId(0));
  }
  run.spine.transition_indices.assign(values.size() - 1, 0);
  run.cycle_start = 0;
  run.wrap_transition_index = 0;
  return run;
}

TEST(WindowTest, ViolationBeyondSpineIsCaught) {
  // Constraint: positions at distance 3 are equal. Cycle (1 2): the
  // unrolled run is 1 2 1 2 ...; positions 0 and 3 carry 1 and 2 —
  // violated, but only visible when the factor wraps past the spine.
  ExtendedAutomaton era = MakeGapEquality(3, /*equality=*/true);
  LassoRun run = CycleRun({1, 2});
  EXPECT_FALSE(CheckLassoRunConstraints(era, run).ok());
  // Cycle (1): positions at distance 3 both carry 1 — satisfied.
  EXPECT_TRUE(CheckLassoRunConstraints(era, CycleRun({1})).ok());
}

TEST(WindowTest, ParityInteraction) {
  // Distance-2 equality on a period-3 cycle: unrolled values
  // a b c a b c...; positions 0 and 2 carry a and c -> forced equal; by
  // propagation around the cycle all three must coincide.
  ExtendedAutomaton era = MakeGapEquality(2, /*equality=*/true);
  EXPECT_FALSE(CheckLassoRunConstraints(era, CycleRun({1, 2, 3})).ok());
  EXPECT_TRUE(CheckLassoRunConstraints(era, CycleRun({5, 5, 5})).ok());
}

TEST(WindowTest, InequalityAcrossWrap) {
  // Distance-2 inequality on a period-2 cycle: positions 0 and 2 carry
  // the same value — violated.
  ExtendedAutomaton era = MakeGapEquality(2, /*equality=*/false);
  EXPECT_FALSE(CheckLassoRunConstraints(era, CycleRun({1, 2})).ok());
  // Period 2 can never satisfy distance-2 inequality (0 vs 2 same slot);
  // but distance-1 inequality (consecutive) is satisfiable by (1 2).
  ExtendedAutomaton consecutive = MakeGapEquality(1, /*equality=*/false);
  EXPECT_TRUE(CheckLassoRunConstraints(consecutive, CycleRun({1, 2})).ok());
  EXPECT_FALSE(CheckLassoRunConstraints(consecutive, CycleRun({1})).ok());
}

TEST(WindowTest, LongGapAgainstShortPeriod) {
  // Distance-7 equality, period 3: 7 mod 3 = 1, so equality at distance 7
  // forces equality at distance 1 around the cycle, collapsing all values.
  ExtendedAutomaton era = MakeGapEquality(7, /*equality=*/true);
  EXPECT_FALSE(CheckLassoRunConstraints(era, CycleRun({1, 2, 3})).ok());
  EXPECT_TRUE(CheckLassoRunConstraints(era, CycleRun({4, 4, 4})).ok());
}

TEST(WindowTest, PrefixThenCycle) {
  // Prefix positions participate too: spine 9 [1 2]^ω with distance-2
  // equality: positions 0 (value 9) and 2 (value 2)... position 2 is the
  // cycle's second slot. Violated.
  ExtendedAutomaton era = MakeGapEquality(2, /*equality=*/true);
  LassoRun run;
  run.spine.values = {{9}, {1}, {2}};
  run.spine.states = testing::StateIds({0, 0, 0});
  run.spine.transition_indices = {0, 0};
  run.cycle_start = 1;
  run.wrap_transition_index = 0;
  EXPECT_FALSE(CheckLassoRunConstraints(era, run).ok());
  // With the prefix matching the cycle slot two ahead, it is satisfied:
  // 1 [1 1]: all values equal.
  LassoRun ok;
  ok.spine.values = {{1}, {1}, {1}};
  ok.spine.states = testing::StateIds({0, 0, 0});
  ok.spine.transition_indices = {0, 0};
  ok.cycle_start = 1;
  ok.wrap_transition_index = 0;
  EXPECT_TRUE(CheckLassoRunConstraints(era, ok).ok());
}

}  // namespace
}  // namespace rav
