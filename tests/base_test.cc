#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/arena.h"
#include "base/bitset.h"
#include "base/interner.h"
#include "base/numbers.h"
#include "base/status.h"
#include "base/union_find.h"
#include "base/value.h"

namespace rav {
namespace {

// --- Status / Result ---

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad regex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad regex");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad regex");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> in) {
  RAV_ASSIGN_OR_RETURN(int v, in);
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("x")).ok());
}

// --- Arena ---

TEST(ArenaTest, AllocatesAligned) {
  Arena arena(128);
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(24, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  }
  EXPECT_GE(arena.bytes_allocated(), 2400u);
  EXPECT_GT(arena.num_blocks(), 1u);
}

TEST(ArenaTest, NewConstructsValues) {
  Arena arena;
  struct Node {
    int a;
    double b;
  };
  Node* n = arena.New<Node>(Node{7, 3.5});
  EXPECT_EQ(n->a, 7);
  EXPECT_EQ(n->b, 3.5);
  int* xs = arena.NewArray<int>(16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(xs[i], 0);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(64);
  void* p = arena.Allocate(4096);
  ASSERT_NE(p, nullptr);
}

TEST(ArenaTest, ResetDropsEverything) {
  Arena arena;
  arena.Allocate(100);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.num_blocks(), 0u);
}

// --- UnionFind ---

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumClasses(), 5u);
  EXPECT_FALSE(uf.Same(0, 1));
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Same(0, 2));
  EXPECT_FALSE(uf.Same(0, 3));
  EXPECT_EQ(uf.NumClasses(), 4u);
}

TEST(UnionFindTest, AddGrows) {
  UnionFind uf(2);
  int id = uf.Add();
  EXPECT_EQ(id, 2);
  uf.Union(0, id);
  EXPECT_TRUE(uf.Same(0, 2));
}

TEST(UnionFindTest, RepresentativesAreCanonical) {
  UnionFind uf(4);
  uf.Union(2, 3);
  std::vector<int> reps = uf.Representatives();
  EXPECT_EQ(reps.size(), 3u);
}

// --- Bitset ---

TEST(BitsetTest, SetTestClear) {
  Bitset b(130);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(64));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, SetAlgebra) {
  Bitset a(70), b(70);
  a.Set(3);
  a.Set(68);
  b.Set(68);
  EXPECT_TRUE(a.Intersects(b));
  Bitset c = a;
  c &= b;
  EXPECT_EQ(c.Count(), 1u);
  c |= a;
  EXPECT_EQ(c.Count(), 2u);
  EXPECT_TRUE(c == a);
}

TEST(BitsetTest, ForEachAscending) {
  Bitset b(100);
  b.Set(5);
  b.Set(77);
  std::vector<size_t> seen;
  b.ForEach([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{5, 77}));
}

TEST(BitsetTest, HashDiffersOnContent) {
  Bitset a(64), b(64);
  b.Set(1);
  Bitset::Hasher h;
  EXPECT_NE(h(a), h(b));
}

// --- Interner ---

TEST(InternerTest, InternsAndLooksUp) {
  Interner<std::string> interner;
  int a = interner.Intern("alpha");
  int b = interner.Intern("beta");
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Lookup("gamma"), -1);
  EXPECT_EQ(interner.Get(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
}

// --- FreshValueSource ---

TEST(FreshValueSourceTest, AvoidsObservedValues) {
  FreshValueSource fresh;
  fresh.Observe(0);
  fresh.Observe(1);
  fresh.Observe(5);
  DataValue v = fresh.Fresh();
  EXPECT_NE(v, 0);
  EXPECT_NE(v, 1);
  EXPECT_NE(v, 5);
  DataValue w = fresh.Fresh();
  EXPECT_NE(v, w);
}

// --- Unit-suffix grammars (base/numbers.h) ---
//
// Edge-case regressions for the documented CLI help: --timeout requires
// a unit suffix (ms/s/m), --memory-limit takes an optional one (k/m/g),
// both case-insensitive, and every rejection names the valid suffixes.

// Expects `result` to be an InvalidArgument whose message contains every
// needle — in particular the "valid suffixes" enumeration, so a user who
// typo'd a unit is told what the units are.
void ExpectRejects(const Result<long long>& result,
                   const std::vector<std::string>& needles) {
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  for (const std::string& needle : needles) {
    EXPECT_NE(result.status().message().find(needle), std::string::npos)
        << "message: " << result.status().message()
        << "\nmissing: " << needle;
  }
}

TEST(DurationGrammarTest, AcceptsEveryDocumentedSuffix) {
  EXPECT_EQ(*ParseDurationMs("250ms"), 250);
  EXPECT_EQ(*ParseDurationMs("10s"), 10000);
  EXPECT_EQ(*ParseDurationMs("2m"), 120000);
  EXPECT_EQ(*ParseDurationMs("0ms"), 0);
  EXPECT_EQ(*ParseDurationMs("+5s"), 5000);
}

TEST(DurationGrammarTest, SuffixesAreCaseInsensitive) {
  // The byte-size grammar always took 64K; durations rejected 10S. The
  // two grammars now agree: unit suffixes are case-insensitive in both.
  EXPECT_EQ(*ParseDurationMs("250MS"), 250);
  EXPECT_EQ(*ParseDurationMs("250Ms"), 250);
  EXPECT_EQ(*ParseDurationMs("250mS"), 250);
  EXPECT_EQ(*ParseDurationMs("10S"), 10000);
  EXPECT_EQ(*ParseDurationMs("2M"), 120000);
}

TEST(DurationGrammarTest, BareNumberIsRejectedNamingTheSuffixes) {
  // --timeout documents a required unit; the error must say which ones.
  ExpectRejects(ParseDurationMs("10"),
                {"missing unit suffix", "ms, s, m"});
  ExpectRejects(ParseDurationMs("0"), {"missing unit suffix"});
}

TEST(DurationGrammarTest, SuffixOnlyStringsAreRejectedAsMissingNumber) {
  // "ms" used to fall through the suffix chain as <"m">+"s" and produce
  // a generic integer error; it is a missing magnitude, not a bad one.
  ExpectRejects(ParseDurationMs("ms"), {"missing a number", "'ms'"});
  ExpectRejects(ParseDurationMs("s"), {"missing a number", "'s'"});
  ExpectRejects(ParseDurationMs("m"), {"missing a number", "'m'"});
  ExpectRejects(ParseDurationMs("MS"), {"missing a number"});
}

TEST(DurationGrammarTest, UnknownSuffixesAreRejectedByName) {
  ExpectRejects(ParseDurationMs("10h"), {"unknown unit suffix 'h'"});
  ExpectRejects(ParseDurationMs("10sec"), {"unknown unit suffix 'sec'"});
  ExpectRejects(ParseDurationMs("10us"), {"unknown unit suffix 'us'"});
  ExpectRejects(ParseDurationMs(""), {"missing unit suffix"});
}

TEST(DurationGrammarTest, BadMagnitudesAreRejected) {
  ExpectRejects(ParseDurationMs("-5s"), {"non-negative"});
  ExpectRejects(ParseDurationMs("1 0ms"), {"not a decimal integer"});
  ExpectRejects(ParseDurationMs("0x10ms"), {"not a decimal integer"});
  EXPECT_FALSE(ParseDurationMs("999999999999999999m").ok());  // overflow
}

TEST(ByteSizeGrammarTest, AcceptsDocumentedForms) {
  EXPECT_EQ(*ParseByteSize("1048576"), 1048576);
  EXPECT_EQ(*ParseByteSize("0"), 0);
  EXPECT_EQ(*ParseByteSize("64k"), 64 * 1024);
  EXPECT_EQ(*ParseByteSize("512m"), 512LL * 1024 * 1024);
  EXPECT_EQ(*ParseByteSize("2g"), 2LL * 1024 * 1024 * 1024);
  EXPECT_EQ(*ParseByteSize("64K"), 64 * 1024);
  EXPECT_EQ(*ParseByteSize("512M"), 512LL * 1024 * 1024);
  EXPECT_EQ(*ParseByteSize("2G"), 2LL * 1024 * 1024 * 1024);
}

TEST(ByteSizeGrammarTest, SuffixOnlyStringsAreRejectedAsMissingNumber) {
  ExpectRejects(ParseByteSize("k"), {"missing a number", "'k'"});
  ExpectRejects(ParseByteSize("g"), {"missing a number"});
  ExpectRejects(ParseByteSize(""), {"expected a number"});
}

TEST(ByteSizeGrammarTest, UnknownSuffixesAreRejectedByName) {
  // "64kb" is an unknown *suffix* "kb", not the integer junk "64k"+"b":
  // the whole trailing alphabetic run is the unit.
  ExpectRejects(ParseByteSize("64kb"), {"unknown unit suffix 'kb'"});
  ExpectRejects(ParseByteSize("10t"), {"unknown unit suffix 't'", "k, m, g"});
  ExpectRejects(ParseByteSize("x"), {"unknown unit suffix 'x'"});
}

TEST(ByteSizeGrammarTest, BadMagnitudesAreRejected) {
  ExpectRejects(ParseByteSize("-1"), {"non-negative"});
  ExpectRejects(ParseByteSize("-1k"), {"non-negative"});
  ExpectRejects(ParseByteSize("1 0"), {"not a decimal integer"});
  EXPECT_FALSE(ParseByteSize("999999999999999999g").ok());  // overflow
}

}  // namespace
}  // namespace rav
