#!/bin/sh
# Determinism gate for the lint pipeline (docs/linting.md): diagnostics
# are sorted by (line, column, code) at every public entry point, so
#   * two `lint --json` runs over the same files are byte-identical, and
#   * `batch` lint requests produce the same per-request responses no
#     matter how many worker threads race over them.
#
# Usage: cli_lint_determinism_test.sh <rav_cli> <fixture.rav> <scratch-dir>
set -u

CLI="$1"
FIXTURE="$2"
WORK="$3"
mkdir -p "$WORK"

fail() {
  echo "cli_lint_determinism_test: FAIL: $1" >&2
  exit 1
}

DATA_DIR=$(dirname "$FIXTURE")

# --- lint --json: byte-identical across runs ----------------------------
"$CLI" lint --json "$FIXTURE" "$DATA_DIR/ping_pong.rav" \
  "$DATA_DIR/fresh_forever.rav" >"$WORK/run1.json" 2>/dev/null
"$CLI" lint --json "$FIXTURE" "$DATA_DIR/ping_pong.rav" \
  "$DATA_DIR/fresh_forever.rav" >"$WORK/run2.json" 2>/dev/null
cmp -s "$WORK/run1.json" "$WORK/run2.json" ||
  fail "two identical 'lint --json' runs differ"

# --- batch lint: thread-count independent -------------------------------
# Eight lint requests over the two fixture specs; responses arrive in
# completion order, so compare the sorted response sets. The payloads
# (per-request diagnostic lists) must match byte-for-byte between a
# single-threaded and a four-threaded run.
REQUESTS="$WORK/requests.jsonl"
: >"$REQUESTS"
dirty_spec=$(awk '{printf "%s\\n", $0}' "$FIXTURE")
clean_spec=$(awk '{printf "%s\\n", $0}' "$DATA_DIR/ping_pong.rav")
i=1
while [ "$i" -le 4 ]; do
  printf '{"id":"d%d","op":"lint","spec":"%s"}\n' "$i" "$dirty_spec" \
    >>"$REQUESTS"
  printf '{"id":"c%d","op":"lint","spec":"%s"}\n' "$i" "$clean_spec" \
    >>"$REQUESTS"
  i=$((i + 1))
done

# Wall-clock timings and cache hit/miss flags legitimately vary between
# runs (with 4 threads the identical specs race to populate the cache);
# everything else — above all the diagnostic lists — must not.
normalize() {
  sed -E 's/"wall_ms":[0-9.eE+-]+/"wall_ms":0/g
          s/"cache_hit":(true|false)/"cache_hit":x/g' | sort
}

"$CLI" batch --threads 1 "$REQUESTS" 2>/dev/null |
  normalize >"$WORK/threads1.out"
"$CLI" batch --threads 4 "$REQUESTS" 2>/dev/null |
  normalize >"$WORK/threads4.out"

[ -s "$WORK/threads1.out" ] || fail "single-threaded batch produced no output"
cmp -s "$WORK/threads1.out" "$WORK/threads4.out" ||
  fail "batch lint responses differ between --threads 1 and --threads 4"

# The dirty spec's responses must actually carry the flow findings (the
# comparison above would also pass on two identically-empty outputs).
grep -q 'RAV012' "$WORK/threads1.out" ||
  fail "batch lint response lacks the fixture's RAV012 findings"

echo "cli_lint_determinism_test: PASS"
exit 0
