#include <gtest/gtest.h>

#include "types/completion.h"
#include "types/type.h"

namespace rav {
namespace {

// Bell numbers: the number of equality completions of the trivial type
// over n variables (all partitions are allowed, every pair gets decided).
TEST(CompletionTest, TrivialTypeCountsAreBellNumbers) {
  EXPECT_EQ(CountEqualityCompletions(Type(1, 0)), 1u);
  EXPECT_EQ(CountEqualityCompletions(Type(2, 0)), 2u);
  EXPECT_EQ(CountEqualityCompletions(Type(3, 0)), 5u);
  EXPECT_EQ(CountEqualityCompletions(Type(4, 0)), 15u);
  EXPECT_EQ(CountEqualityCompletions(Type(5, 0)), 52u);
}

TEST(CompletionTest, ForcedEqualityReducesCount) {
  TypeBuilder b(3, 0);
  b.AddEq(ElementIndex(0), ElementIndex(1));
  // v0=v1 glued: partitions of {v0v1, v2} = 2.
  EXPECT_EQ(CountEqualityCompletions(b.Build().value()), 2u);
}

TEST(CompletionTest, DisequalityPrunesPartitions) {
  TypeBuilder b(3, 0);
  b.AddNeq(ElementIndex(0), ElementIndex(1));
  // Partitions of 3 elements where 0,1 separated: 5 - 2 = ... partitions
  // of {0,1,2}: {012},{01|2},{02|1},{0|12},{0|1|2}; excluded those merging
  // 0,1: {012},{01|2} -> 3 remain.
  EXPECT_EQ(CountEqualityCompletions(b.Build().value()), 3u);
}

TEST(CompletionTest, CompletionsAreEqualityComplete) {
  TypeBuilder b(3, 0);
  b.AddEq(ElementIndex(0), ElementIndex(1));
  for (const Type& c : EqualityCompletions(b.Build().value())) {
    EXPECT_TRUE(c.IsEqualityComplete());
    EXPECT_TRUE(c.AreEqual(0, 1));  // extension preserves original literals
  }
}

TEST(CompletionTest, Example2CompletionOfDelta2) {
  // Example 2: completing δ2 = (x2 = y2) of Example 1 (k = 2, 4 vars).
  // Variables x1,x2,y1,y2 with x2=y2 glued: partitions of 3 groups
  // {x1},{x2y2},{y1} = Bell(3) = 5 completions.
  Schema s;
  TypeBuilder b = TypeBuilder::ForTransition(2, s);
  b.AddEq(b.X(1), b.Y(1));
  EXPECT_EQ(CountEqualityCompletions(b.Build().value()), 5u);
}

TEST(CompletionTest, Example2CompletionOfDelta1) {
  // δ1 = (x1 = x2 ∧ x2 = y2): groups {x1x2y2}, {y1} -> 2 completions, as
  // the paper notes ("settling y1 vs y2 settles all other relationships").
  Schema s;
  TypeBuilder b = TypeBuilder::ForTransition(2, s);
  b.AddEq(b.X(0), b.X(1)).AddEq(b.X(1), b.Y(1));
  std::vector<Type> cs = EqualityCompletions(b.Build().value());
  EXPECT_EQ(cs.size(), 2u);
  bool saw_equal = false, saw_distinct = false;
  for (const Type& c : cs) {
    if (c.AreEqual(2, 3)) saw_equal = true;        // y1 = y2
    if (c.AreDistinct(2, 3)) saw_distinct = true;  // y1 ≠ y2
  }
  EXPECT_TRUE(saw_equal);
  EXPECT_TRUE(saw_distinct);
}

TEST(CompletionTest, ConstantsAnchorButConstPairsStayOpen) {
  Schema s;
  s.AddConstant("c1");
  s.AddConstant("c2");
  // One variable, two constants, no literals. The variable must be decided
  // against both constants; the constants need not be decided against each
  // other. Partitions: v alone; v=c1; v=c2; and v bridging c1=c2 (v=c1=c2).
  Type t(1, 2);
  EXPECT_EQ(CountEqualityCompletions(t), 4u);
  for (const Type& c : EqualityCompletions(t)) {
    EXPECT_TRUE(c.IsEqualityComplete());
  }
}

TEST(CompletionTest, FullCompletionAddsAllAtoms) {
  Schema s;
  s.AddRelation("P", 1);
  TypeBuilder b(2, 0);
  b.AddNeq(ElementIndex(0), ElementIndex(1));
  // Equality part fixed (2 classes). Atoms: P on each class undecided:
  // 2 classes -> 4 sign assignments.
  std::vector<Type> cs = Completions(b.Build().value(), s);
  EXPECT_EQ(cs.size(), 4u);
  for (const Type& c : cs) EXPECT_TRUE(c.IsComplete(s));
}

TEST(CompletionTest, FullCompletionCountsMultiplyWithPartitions) {
  Schema s;
  s.AddRelation("P", 1);
  // 2 free variables: partitions {v0v1} (1 class -> 2 sign choices) and
  // {v0|v1} (2 classes -> 4 sign choices) = 6 total.
  EXPECT_EQ(EnumerateCompletions(Type(2, 0), s,
                                 [](const Type&) { return true; }),
            6u);
}

TEST(CompletionTest, MergeRespectingAtomsPrunesContradictions) {
  Schema s;
  s.AddRelation("P", 1);
  TypeBuilder b(2, 0);
  b.AddAtom(0, {ElementIndex(0)}, true).AddAtom(0, {ElementIndex(1)}, false);
  // P(v0) ∧ ¬P(v1) forbids merging v0, v1: only the separated partition
  // survives, with all atoms already settled.
  std::vector<Type> cs = Completions(b.Build().value(), s);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs[0].AreDistinct(0, 1));
}

TEST(CompletionTest, EarlyStopViaCallback) {
  size_t delivered = EnumerateEqualityCompletions(
      Type(5, 0), [](const Type&) { return false; });
  EXPECT_EQ(delivered, 1u);
}

TEST(CompletionTest, BinaryRelationAtomCount) {
  Schema s;
  s.AddRelation("E", 2);
  TypeBuilder b(2, 0);
  b.AddNeq(ElementIndex(0), ElementIndex(1));
  // 2 classes, binary relation: 4 class tuples -> 16 completions.
  std::vector<Type> cs = Completions(b.Build().value(), s);
  EXPECT_EQ(cs.size(), 16u);
  for (const Type& c : cs) {
    EXPECT_EQ(c.atoms().size(), 4u);
    EXPECT_TRUE(c.IsComplete(s));
  }
}

}  // namespace
}  // namespace rav
