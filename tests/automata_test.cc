#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>

#include "automata/dfa.h"
#include "automata/dfa_to_regex.h"
#include "automata/lasso.h"
#include "automata/nba.h"
#include "automata/nfa.h"
#include "automata/regex.h"

namespace rav {
namespace {

// Resolver over single-letter symbols a=0, b=1, c=2.
int Abc(const std::string& name) {
  if (name == "a") return 0;
  if (name == "b") return 1;
  if (name == "c") return 2;
  return -1;
}

Dfa CompileAbc(const std::string& text) {
  auto r = Regex::Parse(text, Abc);
  RAV_CHECK(r.ok());
  return r->ToDfa(3);
}

TEST(RegexTest, ParseErrors) {
  EXPECT_FALSE(Regex::Parse("(a", Abc).ok());
  EXPECT_FALSE(Regex::Parse("unknown", Abc).ok());
  EXPECT_FALSE(Regex::Parse("a $ b", Abc).ok());
}

TEST(RegexTest, EmptyAlternativeIsEpsilon) {
  // "a |" parses as a ∪ ε.
  auto r = Regex::Parse("a |", Abc);
  ASSERT_TRUE(r.ok());
  Dfa d = r->ToDfa(3);
  EXPECT_TRUE(d.Accepts({}));
  EXPECT_TRUE(d.Accepts({0}));
  EXPECT_FALSE(d.Accepts({1}));
}

TEST(RegexTest, BasicMatching) {
  Dfa d = CompileAbc("a b* c");
  EXPECT_TRUE(d.Accepts({0, 2}));
  EXPECT_TRUE(d.Accepts({0, 1, 1, 1, 2}));
  EXPECT_FALSE(d.Accepts({0, 1}));
  EXPECT_FALSE(d.Accepts({1, 2}));
}

TEST(RegexTest, UnionAndPlusAndOptional) {
  Dfa d = CompileAbc("(a | b)+ c?");
  EXPECT_TRUE(d.Accepts({0}));
  EXPECT_TRUE(d.Accepts({1, 0, 1}));
  EXPECT_TRUE(d.Accepts({0, 2}));
  EXPECT_FALSE(d.Accepts({2}));
  EXPECT_FALSE(d.Accepts({}));
}

TEST(RegexTest, AnySymbolAndEpsilon) {
  Dfa d = CompileAbc(". .");
  EXPECT_TRUE(d.Accepts({0, 2}));
  EXPECT_FALSE(d.Accepts({0}));
  Dfa e = CompileAbc("_eps");
  EXPECT_TRUE(e.Accepts({}));
  EXPECT_FALSE(e.Accepts({0}));
}

TEST(RegexTest, ProgrammaticConstruction) {
  Regex r = Regex::Concat(Regex::Symbol(0),
                          Regex::Star(Regex::Symbol(1)));
  Dfa d = r.ToDfa(2);
  EXPECT_TRUE(d.Accepts({0, 1, 1}));
  EXPECT_FALSE(d.Accepts({1}));
}

TEST(DfaTest, MinimizeIsCanonical) {
  // (a|b)* a — minimal DFA has 2 states.
  Dfa d = CompileAbc("(a | b)* a");
  EXPECT_LE(d.num_states(), 3);  // minimized over 3-letter alphabet
  Dfa d2 = CompileAbc("(b* a)+");
  EXPECT_TRUE(d.EquivalentTo(d2));
}

TEST(DfaTest, ComplementAndIntersection) {
  Dfa a = CompileAbc("a b");
  Dfa not_a = a.Complement();
  EXPECT_FALSE(not_a.Accepts({0, 1}));
  EXPECT_TRUE(not_a.Accepts({0}));
  Dfa both = CompileAbc("a .").Intersect(CompileAbc(". b"));
  EXPECT_TRUE(both.Accepts({0, 1}));
  EXPECT_FALSE(both.Accepts({0, 2}));
}

TEST(DfaTest, EmptyLanguage) {
  Dfa a = CompileAbc("a");
  EXPECT_FALSE(a.IsEmptyLanguage());
  EXPECT_TRUE(a.Intersect(CompileAbc("b")).IsEmptyLanguage());
}

TEST(NfaTest, EpsilonClosureAndAccepts) {
  Nfa nfa(2);
  int s0 = nfa.AddState();
  int s1 = nfa.AddState();
  int s2 = nfa.AddState();
  nfa.AddTransition(s0, Nfa::kEpsilon, s1);
  nfa.AddTransition(s1, 0, s2);
  nfa.SetInitial(s0);
  nfa.SetAccepting(s2);
  EXPECT_TRUE(nfa.Accepts({0}));
  EXPECT_FALSE(nfa.Accepts({1}));
  EXPECT_FALSE(nfa.Accepts({}));
}

TEST(LassoTest, SymbolAtAndPump) {
  LassoWord w{{9}, {1, 2}};
  EXPECT_EQ(w.SymbolAt(0), 9);
  EXPECT_EQ(w.SymbolAt(1), 1);
  EXPECT_EQ(w.SymbolAt(2), 2);
  EXPECT_EQ(w.SymbolAt(3), 1);
  LassoWord p = w.PumpCycle(2);
  EXPECT_EQ(p.cycle.size(), 4u);
  for (size_t i = 0; i < 12; ++i) EXPECT_EQ(w.SymbolAt(i), p.SymbolAt(i));
  EXPECT_EQ(w.CanonicalPosition(5), 1u);
  EXPECT_EQ(w.Unroll(4), (std::vector<int>{9, 1, 2, 1}));
}

Nba MakeSimpleNba() {
  // Accepts words with infinitely many 0s, over {0,1}.
  Nba nba(2);
  int s0 = nba.AddState();  // waiting
  int s1 = nba.AddState();  // just saw 0 (accepting)
  nba.AddTransition(s0, 1, s0);
  nba.AddTransition(s0, 0, s1);
  nba.AddTransition(s1, 0, s1);
  nba.AddTransition(s1, 1, s0);
  nba.SetInitial(s0);
  nba.SetAccepting(s1);
  return nba;
}

TEST(NbaTest, FindAcceptingLassoAndMembership) {
  Nba nba = MakeSimpleNba();
  auto lasso = nba.FindAcceptingLasso();
  ASSERT_TRUE(lasso.has_value());
  EXPECT_TRUE(nba.AcceptsLasso(*lasso));
  EXPECT_TRUE(nba.AcceptsLasso(LassoWord{{}, {0}}));
  EXPECT_TRUE(nba.AcceptsLasso(LassoWord{{1, 1}, {1, 0}}));
  EXPECT_FALSE(nba.AcceptsLasso(LassoWord{{0}, {1}}));  // finitely many 0s
}

TEST(NbaTest, EmptyWhenNoAcceptingCycle) {
  Nba nba(1);
  int s0 = nba.AddState();
  int s1 = nba.AddState();
  nba.AddTransition(s0, 0, s1);  // s1 is a dead end
  nba.SetInitial(s0);
  nba.SetAccepting(s1);
  EXPECT_TRUE(nba.IsEmpty());
}

TEST(NbaTest, IntersectionSemantics) {
  // inf-many-0s ∩ inf-many-1s: both required.
  Nba inf0 = MakeSimpleNba();
  Nba inf1(2);
  {
    int s0 = inf1.AddState();
    int s1 = inf1.AddState();
    inf1.AddTransition(s0, 0, s0);
    inf1.AddTransition(s0, 1, s1);
    inf1.AddTransition(s1, 1, s1);
    inf1.AddTransition(s1, 0, s0);
    inf1.SetInitial(s0);
    inf1.SetAccepting(s1);
  }
  Nba both = inf0.Intersect(inf1);
  EXPECT_TRUE(both.AcceptsLasso(LassoWord{{}, {0, 1}}));
  EXPECT_FALSE(both.AcceptsLasso(LassoWord{{}, {0}}));
  EXPECT_FALSE(both.AcceptsLasso(LassoWord{{}, {1}}));
  EXPECT_FALSE(both.IsEmpty());
}

TEST(NbaTest, UnionSemantics) {
  Nba only0(2);
  {
    int s = only0.AddState();
    only0.AddTransition(s, 0, s);
    only0.SetInitial(s);
    only0.SetAccepting(s);
  }
  Nba only1(2);
  {
    int s = only1.AddState();
    only1.AddTransition(s, 1, s);
    only1.SetInitial(s);
    only1.SetAccepting(s);
  }
  Nba u = only0.Union(only1);
  EXPECT_TRUE(u.AcceptsLasso(LassoWord{{}, {0}}));
  EXPECT_TRUE(u.AcceptsLasso(LassoWord{{}, {1}}));
  EXPECT_FALSE(u.AcceptsLasso(LassoWord{{}, {0, 1}}));
}

TEST(NbaTest, FromLassoWordAcceptsExactlyThatWord) {
  LassoWord w{{0}, {1, 0}};
  Nba nba = Nba::FromLassoWord(2, w);
  EXPECT_TRUE(nba.AcceptsLasso(w));
  EXPECT_TRUE(nba.AcceptsLasso(LassoWord{{0, 1}, {0, 1}}));  // same ω-word
  EXPECT_FALSE(nba.AcceptsLasso(LassoWord{{}, {1, 0}}));
}

TEST(NbaTest, EnumerateAcceptingLassosFindsWitnesses) {
  Nba nba = MakeSimpleNba();
  size_t count = 0;
  bool all_valid = true;
  nba.EnumerateAcceptingLassos(6, 100, [&](const LassoWord& w) {
    ++count;
    all_valid = all_valid && nba.AcceptsLasso(w);
    return true;
  });
  EXPECT_GT(count, 0u);
  EXPECT_TRUE(all_valid);
}

TEST(GeneralizedNbaTest, ZeroAcceptSetsMeansAllAccepting) {
  GeneralizedNba g(1, 0);
  int s = g.AddState();
  g.AddTransition(s, 0, s);
  g.SetInitial(s);
  Nba nba = g.Degeneralize();
  EXPECT_FALSE(nba.IsEmpty());
}

// --- DFA -> regex (state elimination) ---

std::string AbcName(int s) {
  return std::string(1, static_cast<char>('a' + s));
}

TEST(DfaToRegexTest, RoundTripsFixedRegexes) {
  for (const char* text :
       {"a b* c", "(a | b)+", "a? b? c?", ". . .", "a (b a)* c | b",
        "_eps", "(a b | b a)*"}) {
    Dfa original = CompileAbc(text);
    auto back = DfaToRegexString(original, AbcName);
    ASSERT_TRUE(back.has_value()) << text;
    auto reparsed = Regex::Parse(*back, Abc);
    ASSERT_TRUE(reparsed.ok()) << *back;
    EXPECT_TRUE(reparsed->ToDfa(3).EquivalentTo(original))
        << text << " -> " << *back;
  }
}

TEST(DfaToRegexTest, EmptyLanguageIsNullopt) {
  Dfa empty = CompileAbc("a").Intersect(CompileAbc("b"));
  EXPECT_FALSE(DfaToRegexString(empty, AbcName).has_value());
}

// Property sweep: random regexes round-trip through DFA and back.
class DfaRegexRoundTrip : public ::testing::TestWithParam<int> {};

Regex RandomRegex(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> op(0, 4);
  std::uniform_int_distribution<int> sym(0, 2);
  if (depth == 0) return Regex::Symbol(sym(rng));
  switch (op(rng)) {
    case 0:
      return Regex::Concat(RandomRegex(rng, depth - 1),
                           RandomRegex(rng, depth - 1));
    case 1:
      return Regex::Union(RandomRegex(rng, depth - 1),
                          RandomRegex(rng, depth - 1));
    case 2:
      return Regex::Star(RandomRegex(rng, depth - 1));
    case 3:
      return Regex::Optional(RandomRegex(rng, depth - 1));
    default:
      return Regex::Symbol(sym(rng));
  }
}

TEST_P(DfaRegexRoundTrip, Equivalent) {
  std::mt19937 rng(GetParam());
  Regex r = RandomRegex(rng, 3);
  Dfa original = r.ToDfa(3);
  auto back = DfaToRegexString(original, AbcName);
  if (!back.has_value()) {
    EXPECT_TRUE(original.IsEmptyLanguage());
    return;
  }
  auto reparsed = Regex::Parse(*back, Abc);
  ASSERT_TRUE(reparsed.ok()) << *back;
  EXPECT_TRUE(reparsed->ToDfa(3).EquivalentTo(original));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DfaRegexRoundTrip,
                         ::testing::Range(1, 30));

TEST(GeneralizedNbaTest, TwoSetsRequireBoth) {
  // States A, B; must visit both infinitely often.
  GeneralizedNba g(2, 2);
  int a = g.AddState();
  int b = g.AddState();
  g.AddTransition(a, 0, a);
  g.AddTransition(a, 1, b);
  g.AddTransition(b, 1, b);
  g.AddTransition(b, 0, a);
  g.SetInitial(a);
  g.AddToAcceptSet(0, a);
  g.AddToAcceptSet(1, b);
  Nba nba = g.Degeneralize();
  EXPECT_TRUE(nba.AcceptsLasso(LassoWord{{}, {1, 0}}));
  EXPECT_FALSE(nba.AcceptsLasso(LassoWord{{}, {0}}));
}

}  // namespace
}  // namespace rav
