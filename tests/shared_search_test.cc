// Tests of the shared-memory search mode (docs/search.md): the pooled
// state store and sharded interning set it is built on, the canonical
// lasso decomposition used as the interning key, the randomized
// differential against the partitioned reference engine (verdict, stop
// reason, witness validity), shared-mode determinism across worker
// counts, dedup effectiveness, and a governor memory-budget trip charged
// through the visited set.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "automata/lasso.h"
#include "base/concurrent_set.h"
#include "base/governor.h"
#include "base/state_pool.h"
#include "era/emptiness.h"
#include "ra/random.h"
#include "ra/transform.h"

namespace rav {
namespace {

// --- LassoWord::Canonicalized ---

TEST(LassoCanonicalTest, PrimitiveRootIsExtracted) {
  LassoWord word{.prefix = {}, .cycle = {1, 2, 1, 2, 1, 2}};
  LassoWord canonical = word.Canonicalized();
  EXPECT_TRUE(canonical.prefix.empty());
  EXPECT_EQ(canonical.cycle, (std::vector<int>{1, 2}));
}

TEST(LassoCanonicalTest, BoundaryRollsLeftIntoTheCycle) {
  // 0·(1 0)^ω spells 0 1 0 1 0 ... = (0 1)^ω.
  LassoWord word{.prefix = {0}, .cycle = {1, 0}};
  LassoWord canonical = word.Canonicalized();
  EXPECT_TRUE(canonical.prefix.empty());
  EXPECT_EQ(canonical.cycle, (std::vector<int>{0, 1}));
}

TEST(LassoCanonicalTest, CanonicalFormIsAFixedPoint) {
  LassoWord word{.prefix = {3, 1}, .cycle = {2, 2, 1}};
  LassoWord canonical = word.Canonicalized();
  EXPECT_EQ(canonical.Canonicalized(), canonical);
}

TEST(LassoCanonicalTest, EveryDecompositionOfAWordCanonicalizesEqually) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> symbol(0, 2);
  std::uniform_int_distribution<size_t> length(1, 4);
  for (int iteration = 0; iteration < 500; ++iteration) {
    LassoWord base;
    for (size_t i = length(rng); i > 0; --i) base.prefix.push_back(symbol(rng));
    for (size_t i = length(rng); i > 0; --i) base.cycle.push_back(symbol(rng));
    // Alternative decompositions of the same ω-word: pump the cycle
    // and/or unroll cycles into the prefix.
    LassoWord pumped = base.PumpCycle(1 + iteration % 3);
    LassoWord unrolled = base;
    for (int unroll = 0; unroll <= iteration % 3; ++unroll) {
      unrolled.prefix.insert(unrolled.prefix.end(), base.cycle.begin(),
                             base.cycle.end());
    }
    const LassoWord canonical = base.Canonicalized();
    EXPECT_EQ(pumped.Canonicalized(), canonical) << base.ToString();
    EXPECT_EQ(unrolled.Canonicalized(), canonical) << base.ToString();
    // The canonical form spells the same ω-word.
    EXPECT_EQ(canonical.Unroll(24), base.Unroll(24)) << base.ToString();
  }
}

// --- StatePool ---

TEST(StatePoolTest, StoresAndRetrievesRecords) {
  StatePool pool;
  StatePool::ThreadCache cache;
  const std::string a = "hello";
  const std::string b;  // empty records are legal
  StatePool::Handle ha = pool.Store(
      cache, reinterpret_cast<const uint8_t*>(a.data()), a.size());
  StatePool::Handle hb = pool.Store(cache, nullptr, 0);
  ASSERT_EQ(pool.Size(ha), a.size());
  EXPECT_EQ(std::memcmp(pool.Data(ha), a.data(), a.size()), 0);
  EXPECT_EQ(pool.Size(hb), b.size());
  EXPECT_EQ(pool.records(), 2u);
  // The payload word starts pending and round-trips a published value.
  EXPECT_EQ(pool.Payload(ha).load(), 0u);
  pool.Payload(ha).store(42);
  EXPECT_EQ(pool.Payload(ha).load(), 42u);
  EXPECT_EQ(pool.Payload(hb).load(), 0u);
}

TEST(StatePoolTest, OversizeRecordsGetDedicatedChunks) {
  StatePool pool(nullptr, /*chunk_bytes=*/256);
  StatePool::ThreadCache cache;
  std::vector<uint8_t> big(4096);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  StatePool::Handle small = pool.Store(cache, big.data(), 16);
  StatePool::Handle huge = pool.Store(cache, big.data(), big.size());
  ASSERT_EQ(pool.Size(huge), big.size());
  EXPECT_EQ(std::memcmp(pool.Data(huge), big.data(), big.size()), 0);
  ASSERT_EQ(pool.Size(small), 16u);
  EXPECT_EQ(std::memcmp(pool.Data(small), big.data(), 16), 0);
}

TEST(StatePoolTest, ChargesAndReleasesTheGovernor) {
  ExecutionGovernor governor;
  {
    StatePool pool(&governor);
    StatePool::ThreadCache cache;
    const uint8_t byte = 1;
    pool.Store(cache, &byte, 1);
    EXPECT_EQ(governor.live_bytes(), pool.bytes_reserved());
    EXPECT_GE(pool.bytes_reserved(), StatePool::kDefaultChunkBytes);
  }
  // Destroying the pool returns every charged byte.
  EXPECT_EQ(governor.live_bytes(), 0u);
}

TEST(StatePoolTest, ConcurrentStoresStayAddressable) {
  StatePool pool(nullptr, /*chunk_bytes=*/512);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<StatePool::Handle>> handles(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &pool, &handles] {
      StatePool::ThreadCache cache;
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct, recomputable payload per (thread, i).
        uint32_t value = static_cast<uint32_t>(t * kPerThread + i);
        handles[t].push_back(pool.Store(
            cache, reinterpret_cast<const uint8_t*>(&value), sizeof(value)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(pool.records(), static_cast<size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      uint32_t expected = static_cast<uint32_t>(t * kPerThread + i);
      ASSERT_EQ(pool.Size(handles[t][i]), sizeof(expected));
      uint32_t actual;
      std::memcpy(&actual, pool.Data(handles[t][i]), sizeof(actual));
      EXPECT_EQ(actual, expected);
    }
  }
}

// --- ConcurrentSet ---

TEST(ConcurrentSetTest, InternsDeduplicate) {
  StatePool pool;
  ConcurrentSet set(&pool);
  StatePool::ThreadCache cache;
  const std::string key = "configuration";
  auto first = set.Intern(
      cache, reinterpret_cast<const uint8_t*>(key.data()), key.size());
  auto second = set.Intern(
      cache, reinterpret_cast<const uint8_t*>(key.data()), key.size());
  EXPECT_TRUE(first.inserted);
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(first.handle, second.handle);
  EXPECT_EQ(set.size(), 1u);
}

TEST(ConcurrentSetTest, GrowthKeepsEveryKeyFindable) {
  StatePool pool;
  ExecutionGovernor governor;
  ConcurrentSet set(&pool, &governor, /*num_shards=*/2);
  StatePool::ThreadCache cache;
  std::vector<StatePool::Handle> handles;
  for (uint32_t i = 0; i < 5000; ++i) {
    auto r = set.Intern(cache, reinterpret_cast<const uint8_t*>(&i),
                        sizeof(i));
    EXPECT_TRUE(r.inserted);
    handles.push_back(r.handle);
  }
  EXPECT_EQ(set.size(), 5000u);
  // Growth happened (2 shards × 64 initial slots << 5000 keys) and was
  // charged to the governor along with the pool's chunks.
  EXPECT_EQ(governor.live_bytes(), set.bytes_reserved());
  for (uint32_t i = 0; i < 5000; ++i) {
    auto r = set.Intern(cache, reinterpret_cast<const uint8_t*>(&i),
                        sizeof(i));
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(r.handle, handles[i]);
  }
}

TEST(ConcurrentSetTest, ConcurrentInternsAgreeOnHandles) {
  StatePool pool;
  ConcurrentSet set(&pool);
  constexpr int kThreads = 4;
  constexpr uint32_t kKeys = 3000;
  // Every thread interns every key; all threads must see one handle per
  // key and exactly kKeys distinct entries survive.
  std::vector<std::vector<StatePool::Handle>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &set, &seen] {
      StatePool::ThreadCache cache;
      for (uint32_t i = 0; i < kKeys; ++i) {
        seen[t].push_back(
            set.Intern(cache, reinterpret_cast<const uint8_t*>(&i), sizeof(i))
                .handle);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(set.size(), static_cast<size_t>(kKeys));
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

// --- Shared vs partitioned differential on random ERAs ---

Dfa RandomConstraintDfa(std::mt19937& rng, int alphabet_size) {
  std::uniform_int_distribution<int> num_states_dist(1, 5);
  const int n = num_states_dist(rng);
  std::uniform_int_distribution<int> state_dist(0, n - 1);
  Dfa dfa(alphabet_size, n, state_dist(rng));
  std::uniform_int_distribution<int> accept_dist(0, 3);
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < alphabet_size; ++a) {
      dfa.SetTransition(s, a, state_dist(rng));
    }
    dfa.SetAccepting(s, accept_dist(rng) == 0);
  }
  return dfa;
}

// Schema-free (no relational signature): the emptiness verdict of such
// an automaton is a function of the ω-word alone — exactly the contract
// kSharedVisited relies on when it reuses a verdict across
// decompositions.
ExtendedAutomaton RandomCompleteEra(std::mt19937& rng) {
  RandomAutomatonOptions options;
  options.num_registers = std::uniform_int_distribution<int>(1, 3)(rng);
  options.num_states = std::uniform_int_distribution<int>(2, 4)(rng);
  options.num_transitions = 2 * options.num_states;
  RegisterAutomaton a = RandomAutomaton(rng, options);
  Result<RegisterAutomaton> completed = Completed(a);
  RAV_CHECK(completed.ok());
  const int num_states = completed->num_states();
  const int k = completed->num_registers();
  ExtendedAutomaton era(*std::move(completed));
  std::uniform_int_distribution<int> reg_pick(0, k - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const int nc = std::uniform_int_distribution<int>(1, 3)(rng);
  for (int c = 0; c < nc; ++c) {
    const RegisterPair regs{RegisterId(reg_pick(rng)),
                            RegisterId(reg_pick(rng))};
    RAV_CHECK(era.AddConstraintDfa(regs, /*is_equality=*/coin(rng) == 1,
                                   RandomConstraintDfa(rng, num_states))
                  .ok());
  }
  return era;
}

TEST(SharedSearchDifferentialTest, AgreesWithThePartitionedEngine) {
  std::mt19937 rng(20260809);
  size_t nonempty_seen = 0;
  for (int iteration = 0; iteration < 100; ++iteration) {
    ExtendedAutomaton era = RandomCompleteEra(rng);
    ControlAlphabet alphabet(era.automaton());
    EraEmptinessOptions partitioned;
    partitioned.max_lassos = 200;
    partitioned.max_search_steps = 20000;
    auto baseline = CheckEraEmptiness(era, alphabet, partitioned);
    ASSERT_TRUE(baseline.ok());

    EraEmptinessOptions shared = partitioned;
    shared.search_mode = SearchMode::kSharedVisited;
    shared.num_workers = 1 + iteration % 4;
    auto result = CheckEraEmptiness(era, alphabet, shared);
    ASSERT_TRUE(result.ok());

    EXPECT_EQ(result->nonempty, baseline->nonempty) << "iter " << iteration;
    EXPECT_EQ(result->stats.stop_reason, baseline->stats.stop_reason)
        << "iter " << iteration;
    EXPECT_EQ(result->search_truncated, baseline->search_truncated)
        << "iter " << iteration;
    if (baseline->nonempty) {
      ++nonempty_seen;
      // The shared witness may be spelled canonically; it must denote
      // the same realizable language membership — validate it outright.
      const LassoWord& word = result->control_word;
      const size_t window =
          word.prefix.size() + word.cycle.size() * SuggestedPumpCount(era);
      auto witness = RealizeEraWitness(era, alphabet, word, window);
      EXPECT_TRUE(witness.ok())
          << "iter " << iteration << ": " << witness.status().ToString();
      // And it is the canonical spelling of the partitioned witness.
      EXPECT_EQ(word.ToString(),
                baseline->control_word.Canonicalized().ToString())
          << "iter " << iteration;
    }
  }
  // The generator must exercise both verdicts for the diff to mean much.
  EXPECT_GT(nonempty_seen, 10u);
  EXPECT_LT(nonempty_seen, 90u);
}

TEST(SharedSearchDifferentialTest, SharedModeIsDeterministicAcrossWorkers) {
  std::mt19937 rng(42);
  for (int iteration = 0; iteration < 25; ++iteration) {
    ExtendedAutomaton era = RandomCompleteEra(rng);
    ControlAlphabet alphabet(era.automaton());
    EraEmptinessOptions options;
    options.max_lassos = 200;
    options.max_search_steps = 20000;
    options.search_mode = SearchMode::kSharedVisited;
    options.num_workers = 1;
    auto serial = CheckEraEmptiness(era, alphabet, options);
    ASSERT_TRUE(serial.ok());
    for (int workers : {2, 4}) {
      options.num_workers = workers;
      auto parallel = CheckEraEmptiness(era, alphabet, options);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->nonempty, serial->nonempty)
          << "iter " << iteration << " workers " << workers;
      EXPECT_EQ(parallel->stats.stop_reason, serial->stats.stop_reason)
          << "iter " << iteration << " workers " << workers;
      if (serial->nonempty) {
        EXPECT_EQ(parallel->control_word.ToString(),
                  serial->control_word.ToString())
            << "iter " << iteration << " workers " << workers;
      }
    }
  }
}

// --- Dedup effectiveness and metrics surface ---

// The bench family's shift ring (see search_test.cc): a k-register ring
// with skip transitions, so the accepting-lasso space is rich in
// duplicate decompositions of the same ω-words; with the contradictory
// constraint pair every closure is inconsistent and the search drains
// its entire bounded space.
ExtendedAutomaton MakeShiftRingSearchEra(int k, int n, bool contradictory) {
  RegisterAutomaton a(k, Schema());
  for (int s = 0; s < n; ++s) a.AddState("s" + std::to_string(s));
  a.SetInitial(StateId(0));
  a.SetFinal(StateId(0));
  for (int s = 0; s < n; ++s) {
    TypeBuilder b = a.NewGuardBuilder();
    for (int i = 0; i + 1 < k; ++i) b.AddEq(b.X(i), b.Y(i + 1));
    a.AddTransition(StateId(s), b.Build().value(), StateId((s + 1) % n));
  }
  for (int s = 0; s < n; ++s) {
    TypeBuilder b = a.NewGuardBuilder();
    for (int i = 0; i + 1 < k; ++i) b.AddEq(b.X(i), b.Y(i + 1));
    b.AddEq(b.X(0), b.Y(0));
    a.AddTransition(StateId(s), b.Build().value(), StateId((s + 2) % n));
  }
  ExtendedAutomaton era(std::move(a));
  if (contradictory) {
    const RegisterPair r00{RegisterId(0), RegisterId(0)};
    RAV_CHECK(era.AddConstraintFromText(r00, true, "s0 .* s0").ok());
    RAV_CHECK(era.AddConstraintFromText(r00, false, "s0 .* s0").ok());
  }
  return era;
}

// An all-rejecting drain reaches the visited set with every duplicate
// decomposition, so shared mode must evaluate strictly fewer closures
// than the partitioned reference while agreeing on the verdict.
TEST(SharedSearchTest, FullDrainDedupsAcrossDecompositions) {
  ExtendedAutomaton era = MakeShiftRingSearchEra(3, 4, /*contradictory=*/true);
  ControlAlphabet alphabet(era.automaton());
  Nba scontrol = BuildSControlNba(era.automaton(), alphabet);

  EraEmptinessOptions partitioned;
  partitioned.max_lassos = 2000;
  partitioned.max_lasso_length = 10;
  EraEmptinessResult baseline =
      SearchConsistentLasso(era, alphabet, scontrol, partitioned);
  EXPECT_FALSE(baseline.nonempty);

  EraEmptinessOptions shared = partitioned;
  shared.search_mode = SearchMode::kSharedVisited;
  EraEmptinessResult result =
      SearchConsistentLasso(era, alphabet, scontrol, shared);
  EXPECT_FALSE(result.nonempty);
  EXPECT_EQ(result.stats.stop_reason, baseline.stats.stop_reason);
  EXPECT_EQ(result.stats.mode, SearchMode::kSharedVisited);
  EXPECT_GT(result.stats.pool_bytes, 0u);
  // Dedup did real work: some candidates were answered from the set, and
  // closures were built only for the distinct ω-words.
  EXPECT_GT(result.stats.visited_hits, 0u);
  EXPECT_EQ(result.stats.visited_entries + result.stats.visited_hits,
            result.stats.lassos_checked);
  EXPECT_LT(result.stats.closures_built, baseline.stats.closures_built);
}

// --- Governor memory budget through the visited set ---

TEST(SharedSearchGovernorTest, MemoryBudgetTripsOnTheVisitedSet) {
  std::mt19937 rng(9);
  ExtendedAutomaton era = RandomCompleteEra(rng);
  ControlAlphabet alphabet(era.automaton());
  ExecutionGovernor governor;
  // Smaller than one pool chunk: the very first intern trips the budget.
  governor.set_memory_budget(16 * 1024);
  EraEmptinessOptions options;
  options.search_mode = SearchMode::kSharedVisited;
  options.max_lassos = 2000;
  options.governor = &governor;
  auto result = CheckEraEmptiness(era, alphabet, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(governor.trip(), GovernorTrip::kMemoryBudget);
  if (!result->nonempty) {
    EXPECT_EQ(result->stats.stop_reason, SearchStopReason::kMemoryBudget);
    EXPECT_TRUE(result->search_truncated);
  }
  // The search released the visited set's bytes when it finished.
  EXPECT_EQ(governor.live_bytes(), 0u);
}

}  // namespace
}  // namespace rav
