// Quickstart: Example 1 of "Projection Views of Register Automata"
// (Segoufin & Vianu, PODS 2020) built with the rav library.
//
// Demonstrates: constructing a register automaton, simulating runs,
// validating them, completing the automaton (Example 2), the state-driven
// variant (Example 3), and the symbolic control-trace automaton.

#include <cstdio>
#include <random>

#include "ra/control.h"
#include "ra/emptiness.h"
#include "ra/register_automaton.h"
#include "ra/simulate.h"
#include "ra/transform.h"

using namespace rav;

int main() {
  // --- Example 1: the 2-register automaton ---
  RegisterAutomaton a(2, Schema());
  StateId q1 = a.AddState("q1");
  StateId q2 = a.AddState("q2");
  a.SetInitial(q1);
  a.SetFinal(q1);

  // δ1 = (x1 = x2 ∧ x2 = y2): test the registers agree, keep register 2.
  TypeBuilder d1 = a.NewGuardBuilder();
  d1.AddEq(d1.X(0), d1.X(1)).AddEq(d1.X(1), d1.Y(1));
  a.AddTransition(q1, d1.Build().value(), q2);
  // δ2 = (x2 = y2): keep register 2.
  TypeBuilder d2 = a.NewGuardBuilder();
  d2.AddEq(d2.X(1), d2.Y(1));
  a.AddTransition(q2, d2.Build().value(), q2);
  // δ3 = (x2 = y2 ∧ y1 = y2): keep register 2 and copy it into register 1.
  TypeBuilder d3 = a.NewGuardBuilder();
  d3.AddEq(d3.X(1), d3.Y(1)).AddEq(d3.Y(0), d3.Y(1));
  a.AddTransition(q2, d3.Build().value(), q1);

  std::printf("== Example 1 ==\n%s\n", a.ToString().c_str());

  // --- Simulate a few runs ---
  Database db{Schema()};
  std::mt19937 rng(42);
  std::printf("== Sampled runs (register 2 never changes) ==\n");
  for (int i = 0; i < 3; ++i) {
    auto run = SampleRun(a, db, 6, rng);
    if (run.has_value()) {
      Status ok = ValidateRunPrefix(a, db, *run);
      std::printf("  %s  [%s]\n", run->ToString(a).c_str(),
                  ok.ok() ? "valid" : ok.ToString().c_str());
    }
  }

  // --- Completion (Example 2) ---
  RegisterAutomaton completed = Completed(a).value();
  std::printf("\n== Completion (Example 2) ==\n");
  std::printf("  transitions: %d -> %d (each type split into its complete "
              "extensions)\n",
              a.num_transitions(), completed.num_transitions());

  // --- State-driven variant (Example 3) ---
  RegisterAutomaton sd = MakeStateDriven(a);
  std::printf("\n== State-driven variant (Example 3) ==\n");
  std::printf("  states: %d -> %d, state-driven: %s\n", a.num_states(),
              sd.num_states(), sd.IsStateDriven() ? "yes" : "no");

  // --- Symbolic control traces & emptiness ---
  RegisterAutomaton complete_sd = MakeStateDriven(completed);
  ControlAlphabet alphabet(complete_sd);
  Nba scontrol = BuildSControlNba(complete_sd, alphabet);
  std::printf("\n== SControl automaton ==\n");
  std::printf("  control symbols: %d, NBA states: %d, transitions: %d\n",
              alphabet.size(), scontrol.num_states(),
              scontrol.num_transitions());
  auto lasso = FindSymbolicControlLasso(complete_sd, alphabet);
  if (lasso.has_value()) {
    std::printf("  accepting symbolic lasso: %s\n",
                lasso->ToString().c_str());
    auto witness = RealizeWitness(complete_sd, alphabet, *lasso, 8);
    if (witness.ok()) {
      std::printf("  realized witness run: %s\n",
                  witness->run.ToString(complete_sd).c_str());
    }
  }
  std::printf("\nDone.\n");
  return 0;
}
