// LTL-FO verification of extended register automata (Theorem 12): an
// order-processing workflow with a passing property, a failing property
// with a counterexample lasso, and a property that only holds thanks to a
// global constraint.

#include <cstdio>

#include "era/ltlfo.h"
#include "ra/register_automaton.h"

using namespace rav;

namespace {

// Order workflow over registers (order, customer):
//   created -> paid -> shipped -> created (next order) ...
// The customer is kept while an order is processed; a new order gets a
// fresh order id (x_order ≠ y_order on the created transition).
RegisterAutomaton MakeOrderWorkflow() {
  RegisterAutomaton a(2, Schema());
  StateId created = a.AddState("created");
  StateId paid = a.AddState("paid");
  StateId shipped = a.AddState("shipped");
  a.SetInitial(created);
  a.SetFinal(shipped);

  TypeBuilder pay = a.NewGuardBuilder();
  pay.AddEq(pay.X(0), pay.Y(0)).AddEq(pay.X(1), pay.Y(1));
  a.AddTransition(created, pay.Build().value(), paid);

  TypeBuilder ship = a.NewGuardBuilder();
  ship.AddEq(ship.X(0), ship.Y(0)).AddEq(ship.X(1), ship.Y(1));
  a.AddTransition(paid, ship.Build().value(), shipped);

  TypeBuilder next = a.NewGuardBuilder();
  next.AddNeq(next.X(0), next.Y(0));  // a genuinely new order id
  next.AddEq(next.X(1), next.Y(1));   // same customer session
  a.AddTransition(shipped, next.Build().value(), created);
  return a;
}

void Report(const char* name, const Result<VerificationResult>& result) {
  if (!result.ok()) {
    std::printf("  %-38s ERROR: %s\n", name,
                result.status().ToString().c_str());
    return;
  }
  if (result->holds) {
    std::printf("  %-38s HOLDS%s (LTL NBA %d states, product %d states, "
                "%zu lassos searched)\n",
                name, result->search_truncated ? " (bounded search)" : "",
                result->ltl_nba_states, result->product_states,
                result->lassos_tried);
  } else {
    std::printf("  %-38s FAILS — counterexample lasso: %s\n", name,
                result->counterexample->ToString().c_str());
  }
}

}  // namespace

int main() {
  ExtendedAutomaton era(MakeOrderWorkflow());
  std::printf("== Order workflow ==\n%s\n",
              era.automaton().ToString().c_str());

  // AP 0: the order register is unchanged across the step (x1 = y1).
  // AP 1: the customer register is unchanged (x2 = y2).
  // AP 2: order equals customer (x1 = x2) — a nonsense coincidence.
  LtlFoProperty keeps_customer;
  keeps_customer.propositions = {Formula::Eq(Term::Var(1), Term::Var(3))};
  keeps_customer.formula = LtlFormula::Globally(LtlFormula::Ap(0));

  LtlFoProperty keeps_order;
  keeps_order.propositions = {Formula::Eq(Term::Var(0), Term::Var(2))};
  keeps_order.formula = LtlFormula::Globally(LtlFormula::Ap(0));

  LtlFoProperty infinitely_many_new_orders;
  infinitely_many_new_orders.propositions = {
      Formula::Neq(Term::Var(0), Term::Var(2))};
  infinitely_many_new_orders.formula =
      LtlFormula::Globally(LtlFormula::Eventually(LtlFormula::Ap(0)));

  std::printf("== Properties ==\n");
  Report("G (customer unchanged)", VerifyLtlFo(era, keeps_customer));
  Report("G (order unchanged)", VerifyLtlFo(era, keeps_order));
  Report("G F (order changes)", VerifyLtlFo(era, infinitely_many_new_orders));

  // A property that holds only because of a global constraint: order ids
  // are globally fresh — no order id is ever reused at a later
  // created-stage. Expressed as a global inequality constraint between
  // any two distinct created-positions.
  ExtendedAutomaton with_freshness(MakeOrderWorkflow());
  Status s = with_freshness.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, /*is_equality=*/false,
      "created . * created");
  RAV_CHECK(s.ok());

  // Property: order ids at consecutive created stages differ — via global
  // variables this needs quantification; here we verify the local shadow:
  // G (in created with the same id two steps... ) — we check instead that
  // the constraint is consistent (the automaton still has runs) and that
  // adding the *opposite* equality constraint empties it.
  std::printf("\n== Global freshness constraint ==\n");
  {
    // Complete, then run the emptiness decision of Corollary 10.
    auto check = [&](ExtendedAutomaton& subject, const char* label) {
      LtlFoProperty trivially_false;
      trivially_false.propositions = {Formula::True()};
      trivially_false.formula = LtlFormula::Globally(
          LtlFormula::Not(LtlFormula::Ap(0)));  // G ¬true: no run satisfies
      // 𝒜 ⊨ G ¬true iff 𝒜 has no runs at all.
      auto result = VerifyLtlFo(subject, trivially_false);
      if (result.ok()) {
        std::printf("  %-38s %s\n", label,
                    result->holds ? "NO RUNS (empty)" : "has runs");
      } else {
        std::printf("  %-38s ERROR: %s\n", label,
                    result.status().ToString().c_str());
      }
    };
    check(with_freshness, "workflow + order freshness");
    ExtendedAutomaton contradictory(MakeOrderWorkflow());
    const RegisterPair r00{RegisterId(0), RegisterId(0)};
    RAV_CHECK(contradictory
                  .AddConstraintFromText(r00, false, "created . * created")
                  .ok());
    RAV_CHECK(contradictory
                  .AddConstraintFromText(r00, true, "created . * created")
                  .ok());
    check(contradictory, "workflow + freshness + recurrence");
  }
  std::printf("\nDone.\n");
  return 0;
}
