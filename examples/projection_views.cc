// Projection views without a database: Examples 4, 5, 7, 16, 17 and the
// constructions of Sections 4–5 (Theorem 13, Proposition 20, LR-bounds,
// Proposition 22).

#include <cstdio>

#include "era/run_check.h"
#include "projection/lr_bounded.h"
#include "projection/project_ra.h"
#include "projection/prop22.h"
#include "ra/simulate.h"
#include "ra/transform.h"

using namespace rav;

namespace {

RegisterAutomaton MakeExample1() {
  RegisterAutomaton a(2, Schema());
  StateId q1 = a.AddState("q1");
  StateId q2 = a.AddState("q2");
  a.SetInitial(q1);
  a.SetFinal(q1);
  TypeBuilder d1 = a.NewGuardBuilder();
  d1.AddEq(d1.X(0), d1.X(1)).AddEq(d1.X(1), d1.Y(1));
  a.AddTransition(q1, d1.Build().value(), q2);
  TypeBuilder d2 = a.NewGuardBuilder();
  d2.AddEq(d2.X(1), d2.Y(1));
  a.AddTransition(q2, d2.Build().value(), q2);
  TypeBuilder d3 = a.NewGuardBuilder();
  d3.AddEq(d3.X(1), d3.Y(1)).AddEq(d3.Y(0), d3.Y(1));
  a.AddTransition(q2, d3.Build().value(), q1);
  return a;
}

}  // namespace

int main() {
  // --- Example 4/5: project Example 1 onto register 1 ---
  std::printf("== Example 4/5: Π₁ of Example 1 ==\n");
  std::printf(
      "The projection forces the initial value to recur at every q1-visit —\n"
      "a non-local equality no plain register automaton can express.\n\n");
  Prop20Stats stats;
  auto view = ProjectRegisterAutomaton(MakeExample1(), 1, &stats);
  if (!view.ok()) {
    std::printf("projection failed: %s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("Proposition 20 construction:\n");
  std::printf("  completion: %d -> %d transitions\n",
              stats.original_transitions, stats.completed_transitions);
  std::printf("  state-driven states: %d\n", stats.state_driven_states);
  std::printf("  synthesized global constraints: %d (largest DFA: %d "
              "states)\n\n",
              stats.num_constraints, stats.max_constraint_dfa_states);
  std::printf("%s\n", view->ToString().c_str());

  // Spot-check the semantics: a trace revisiting q1 with a different
  // value violates the synthesized constraints.
  {
    const RegisterAutomaton& b = view->automaton();
    // Find a q1-state and a q2-state of the projected automaton by the
    // names inherited from the state-driven construction.
    StateId some_q1, some_q2;
    for (StateId s : b.States()) {
      if (b.state_name(s).substr(0, 2) == "q1" && b.IsInitial(s)) {
        some_q1 = s;
      }
      if (b.state_name(s).substr(0, 2) == "q2") some_q2 = s;
    }
    std::printf("Constraint check on hand-written traces:\n");
    Database db{Schema()};
    size_t shown = 0;
    EnumerateRuns(b, db, 3, {7, 8}, [&](const FiniteRun& run) {
      if (run.states.front() != some_q1 || run.states.back() == some_q2) {
        return true;
      }
      Status s = CheckFiniteRunConstraints(*view, run);
      std::printf("  %-40s %s\n", run.ToString(b).c_str(),
                  s.ok() ? "satisfies Σ" : "violates Σ");
      return ++shown < 6;
    });
  }

  // --- Example 7 / 16 / 17: all-distinct is not a projection ---
  std::printf("\n== Example 7/17: the all-distinct automaton ==\n");
  RegisterAutomaton one(1, Schema());
  StateId q = one.AddState("q");
  one.SetInitial(q);
  one.SetFinal(q);
  one.AddTransition(q, one.NewGuardBuilder().Build().value(), q);
  ExtendedAutomaton all_distinct(one);
  Status s = all_distinct.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "q q+");
  if (!s.ok()) std::printf("constraint error: %s\n", s.ToString().c_str());

  ControlAlphabet alpha(all_distinct.automaton());
  auto bound = EstimateLrBound(all_distinct, alpha);
  if (bound.ok()) {
    std::printf("  LR-bound sampling: max vertex cover %d, growth %s\n",
                bound->max_cover,
                bound->growth_detected
                    ? "DETECTED (not LR-bounded -> not a projection of any "
                      "register automaton, Theorem 19)"
                    : "not detected");
  }
  auto realized = RealizeLrBoundedEra(all_distinct);
  std::printf("  Proposition 22 realization: %s\n",
              realized.ok() ? "succeeded (unexpected!)"
                            : realized.status().ToString().c_str());

  // --- Example 16: consecutive-distinct IS LR-bounded and realizable ---
  std::printf("\n== Example 16: consecutive-distinct ==\n");
  ExtendedAutomaton consecutive(one);
  s = consecutive.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "q q");
  if (!s.ok()) std::printf("constraint error: %s\n", s.ToString().c_str());
  ControlAlphabet alpha2(consecutive.automaton());
  auto bound2 = EstimateLrBound(consecutive, alpha2);
  if (bound2.ok()) {
    std::printf("  LR-bound sampling: max vertex cover %d, growth %s\n",
                bound2->max_cover,
                bound2->growth_detected ? "detected" : "not detected");
  }
  Prop22Stats p22;
  auto ra = RealizeLrBoundedEra(consecutive, &p22);
  if (ra.ok()) {
    std::printf(
        "  Proposition 22: realized with %d registers (window %d); the "
        "paper's general budget for N=%d would be %d registers\n",
        p22.registers_after, p22.window_length, bound2.ok() ? bound2->max_cover : 1,
        p22.paper_budget_for(bound2.ok() ? bound2->max_cover : 1));
  } else {
    std::printf("  Proposition 22 failed: %s\n",
                ra.status().ToString().c_str());
  }
  std::printf("\nDone.\n");
  return 0;
}
