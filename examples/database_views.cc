// Section 6: projections when a database is present — Example 23 and the
// Theorem 24 construction (hide the database together with register 2).

#include <cstdio>

#include "enhanced/theorem24.h"
#include "ra/simulate.h"
#include "ra/transform.h"

using namespace rav;

namespace {

// Example 23: two registers; states p (initial, final) and q; database
// with binary E and unary U. Both transitions keep register 2 and require
// U(x1); the p-transition asserts E(x2, x1), the q-transition ¬E(x2, x1).
RegisterAutomaton MakeExample23() {
  Schema s;
  RelationId e = s.AddRelation("E", 2);
  RelationId u = s.AddRelation("U", 1);
  RegisterAutomaton a(2, s);
  StateId p = a.AddState("p");
  StateId q = a.AddState("q");
  a.SetInitial(p);
  a.SetFinal(p);
  TypeBuilder d1 = a.NewGuardBuilder();
  d1.AddEq(d1.X(1), d1.Y(1));
  d1.AddAtom(u, {d1.X(0)}, true);
  d1.AddAtom(e, {d1.X(1), d1.X(0)}, true);
  a.AddTransition(p, d1.Build().value(), q);
  TypeBuilder d2 = a.NewGuardBuilder();
  d2.AddEq(d2.X(1), d2.Y(1));
  d2.AddAtom(u, {d2.X(0)}, true);
  d2.AddAtom(e, {d2.X(1), d2.X(0)}, false);
  a.AddTransition(q, d2.Build().value(), p);
  return a;
}

}  // namespace

int main() {
  RegisterAutomaton a = MakeExample23();
  std::printf("== Example 23 ==\n%s\n", a.ToString().c_str());
  std::printf(
      "Projections of runs on register 1 are sequences of U-nodes such "
      "that some\nhidden node (register 2) points exactly at the even "
      "positions — a property no\nextended automaton can express "
      "(Example 23's argument). Theorem 24 captures it\nwith tuple-"
      "inequality and finiteness constraints once the database is hidden "
      "too.\n\n");

  // --- A concrete database and run ---
  Schema s = a.schema();
  Database db(s);
  RelationId e_rel = s.FindRelation("E");
  RelationId u_rel = s.FindRelation("U");
  db.Insert(u_rel, {0});
  db.Insert(u_rel, {1});
  db.Insert(e_rel, {5, 0});  // the hidden node 5 points at 0 only
  std::printf("Database:\n%s\n", db.ToString().c_str());

  RegisterAutomaton sd = MakeStateDriven(a);
  std::printf("Runs over this database alternate E / ¬E, so register 1 "
              "alternates 0 / 1:\n");
  size_t shown = 0;
  EnumerateRuns(sd, db, 4, {0, 1, 5}, [&](const FiniteRun& run) {
    std::printf("  %s\n", run.ToString(sd).c_str());
    return ++shown < 4;
  });

  // --- Theorem 24: hide the database and register 2 ---
  Theorem24Stats stats;
  auto enhanced = ProjectWithHiddenDatabase(a, 1, &stats);
  if (!enhanced.ok()) {
    std::printf("construction failed: %s\n",
                enhanced.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Theorem 24 construction ==\n");
  std::printf("%s\n", enhanced->ToString().c_str());
  std::printf("constraints: %d equality, %d inequality (arity-1 tuple), "
              "%d tuple, %d finiteness; dropped literal pairs: %d\n\n",
              stats.num_equality_constraints,
              stats.num_inequality_constraints, stats.num_tuple_constraints,
              stats.num_finiteness_constraints, stats.skipped_literal_pairs);

  // --- The constraints at work ---
  const RegisterAutomaton& b = enhanced->automaton();
  StateId bp, bq;
  for (StateId st : b.States()) {
    if (b.state_name(st)[0] == 'p') bp = st;
    if (b.state_name(st)[0] == 'q') bq = st;
  }
  auto transition_between = [&](StateId from, StateId to) {
    for (int ti : b.TransitionsFrom(from)) {
      if (b.transition(ti).to == to) return ti;
    }
    return -1;
  };
  FiniteRun run;
  run.states = {bp, bq, bp, bq};
  run.transition_indices = {transition_between(bp, bq),
                            transition_between(bq, bp),
                            transition_between(bp, bq)};
  std::printf("Checking candidate visible traces against the enhanced "
              "constraints:\n");
  for (auto values : {std::vector<ValueTuple>{{0}, {1}, {0}, {1}},
                      std::vector<ValueTuple>{{0}, {0}, {0}, {0}},
                      std::vector<ValueTuple>{{0}, {1}, {1}, {0}}}) {
    run.values = values;
    Status status = CheckEnhancedRunConstraints(*enhanced, run);
    std::printf("  trace");
    for (const auto& v : values) std::printf(" %lld", (long long)v[0]);
    std::printf(" : %s\n",
                status.ok() ? "admitted" : status.ToString().c_str());
  }
  std::printf(
      "\nThe admitted traces are exactly those where no even-position "
      "value recurs at\nan odd position — the image of the projection.\n");
  return 0;
}
