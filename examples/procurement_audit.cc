// A procurement workflow end-to-end: conjunctive queries against the
// database, LTL-FO property verification via the named-attribute
// PropertyBuilder, global freshness constraints with constraint-aware
// sampling, and an auditor view that hides the database.

#include <cstdio>
#include <random>

#include "era/simulate_era.h"
#include "relational/query.h"
#include "workflow/builder.h"
#include "workflow/properties.h"
#include "workflow/view.h"

using namespace rav;

int main() {
  // Schema: Vendor(v), Approves(manager, vendor).
  Schema schema;
  RelationId vendor_rel = schema.AddRelation("Vendor", 1);
  RelationId approves_rel = schema.AddRelation("Approves", 2);

  WorkflowBuilder wf(schema);
  int attr_po = wf.AddAttribute("po");        // purchase order id
  wf.AddAttribute("vendor");
  wf.AddAttribute("manager");
  wf.AddStage("requested", /*initial=*/true);
  wf.AddStage("approved");
  wf.AddStage("paid", /*initial=*/false, /*accepting=*/true);

  RAV_CHECK(wf.NewGuard()
                .KeepsAllExcept({"manager"})
                .Holds("Vendor", {"vendor"})
                .Holds("Approves", {"manager+", "vendor"})
                .ConnectTransition("requested", "approved")
                .ok());
  RAV_CHECK(wf.NewGuard()
                .KeepsAllExcept({})
                .ConnectTransition("approved", "paid")
                .ok());
  RAV_CHECK(wf.NewGuard()
                .Keeps("vendor")
                .Changes("po")
                .ConnectTransition("paid", "requested")
                .ok());
  auto workflow = wf.Build();
  RAV_CHECK(workflow.ok());
  std::printf("== Procurement workflow ==\n%s\n", workflow->ToString().c_str());

  // --- Database + a conjunctive query ---
  Database db(schema);
  db.Insert(vendor_rel, {501});
  db.Insert(vendor_rel, {502});
  db.Insert(approves_rel, {21, 501});
  db.Insert(approves_rel, {22, 501});
  db.Insert(approves_rel, {22, 502});
  // Which managers can approve some vendor? ans(m) :- Approves(m, v), Vendor(v).
  auto q = ConjunctiveQuery::Make(
      schema, 2,
      {{approves_rel, {QueryTerm::Var(0), QueryTerm::Var(1)}},
       {vendor_rel, {QueryTerm::Var(1)}}},
      {0});
  RAV_CHECK(q.ok());
  std::printf("Managers with approval power:");
  for (const ValueTuple& row : q->Evaluate(db)) {
    std::printf(" %lld", (long long)row[0]);
  }
  std::printf("\n\n");

  // --- Global constraint: purchase-order ids are globally fresh ---
  ExtendedAutomaton era(*workflow);
  RAV_CHECK(era.AddConstraintFromText(
                   RegisterPair{RegisterId(attr_po), RegisterId(attr_po)},
                   false, "requested . * requested")
                .ok());
  std::mt19937 rng(17);
  auto run = SampleEraRun(era, db, 7, rng);
  if (run.has_value()) {
    std::printf("Constraint-satisfying sample (fresh po ids):\n  %s\n\n",
                run->ToString(*workflow).c_str());
  }

  // --- LTL-FO properties by name ---
  PropertyBuilder props(*workflow, {"po", "vendor", "manager"});
  RAV_CHECK(props.DefineKept("vendor_kept", "vendor").ok());
  RAV_CHECK(props.DefineSame("manager_is_vendor", "manager", "vendor").ok());
  std::printf("== Properties ==\n");
  for (const char* text : {"G vendor_kept", "G !manager_is_vendor"}) {
    auto property = props.Parse(text);
    RAV_CHECK(property.ok());
    auto result = VerifyLtlFo(era, *property);
    if (result.ok()) {
      std::printf("  %-24s %s\n", text,
                  result->holds ? "HOLDS" : "FAILS");
    } else {
      std::printf("  %-24s ERROR: %s\n", text,
                  result.status().ToString().c_str());
    }
  }

  // --- The auditor's view: purchase order + manager, database hidden ---
  Theorem24Stats stats;
  auto auditor_view = MakeHiddenDatabaseView(*workflow, {0, 2}, &stats);
  if (auditor_view.ok()) {
    std::printf("\n== Auditor view (po, manager; database hidden) ==\n");
    std::printf("  %d states, %d transitions; %d equality, %d inequality, "
                "%d tuple, %d finiteness constraints\n",
                auditor_view->automaton().num_states(),
                auditor_view->automaton().num_transitions(),
                stats.num_equality_constraints,
                stats.num_inequality_constraints, stats.num_tuple_constraints,
                stats.num_finiteness_constraints);
  }
  std::printf("\nDone.\n");
  return 0;
}
