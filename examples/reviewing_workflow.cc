// The manuscript-reviewing workflow from the paper's introduction, built
// with the WorkflowBuilder DSL, with projection views for the different
// stakeholder roles:
//   * the author sees the paper and its state, but not the reviewer
//   * under double-blind reviewing, the reviewer does not see the author
// Both views hide the database as well (Theorem 24 views).

#include <cstdio>
#include <random>

#include "ra/simulate.h"
#include "workflow/builder.h"
#include "workflow/view.h"

using namespace rav;

int main() {
  // Database schema: Topic(paper, topic) and Prefers(reviewer, topic).
  Schema schema;
  RelationId topic_rel = schema.AddRelation("Topic", 2);
  RelationId prefers_rel = schema.AddRelation("Prefers", 2);

  WorkflowBuilder wf(schema);
  int attr_paper = wf.AddAttribute("paper");
  wf.AddAttribute("author");
  int attr_reviewer = wf.AddAttribute("reviewer");
  int attr_topic = wf.AddAttribute("topic");

  wf.AddStage("submitted", /*initial=*/true);
  wf.AddStage("under_review");
  wf.AddStage("decided", /*initial=*/false, /*accepting=*/true);

  // Assign a reviewer whose preferences match the paper's topic; the
  // paper, author, and topic stay fixed.
  Status s = wf.NewGuard()
                 .KeepsAllExcept({"reviewer"})
                 .Holds("Topic", {"paper", "topic"})
                 .Holds("Prefers", {"reviewer+", "topic"})
                 .Different("reviewer+", "author")  // no self-review
                 .ConnectTransition("submitted", "under_review");
  RAV_CHECK(s.ok());
  // Reviewing may iterate (sub-reviewers swap in, same topic rules).
  s = wf.NewGuard()
          .KeepsAllExcept({"reviewer"})
          .Holds("Prefers", {"reviewer+", "topic"})
          .Different("reviewer+", "author")
          .ConnectTransition("under_review", "under_review");
  RAV_CHECK(s.ok());
  // A decision is reached; everything is kept.
  s = wf.NewGuard()
          .KeepsAllExcept({})
          .ConnectTransition("under_review", "decided");
  RAV_CHECK(s.ok());
  // Revision loop: back to submitted with the same paper but the record
  // may be refreshed.
  s = wf.NewGuard()
          .Keeps("paper")
          .Keeps("author")
          .Keeps("topic")
          .ConnectTransition("decided", "submitted");
  RAV_CHECK(s.ok());
  // Once decided, the workflow may also idle forever.
  s = wf.NewGuard().KeepsAllExcept({}).ConnectTransition("decided", "decided");
  RAV_CHECK(s.ok());

  auto workflow = wf.Build();
  RAV_CHECK(workflow.ok());
  std::printf("== Reviewing workflow ==\n%s\n",
              workflow->ToString().c_str());

  // --- Simulate over a concrete database ---
  Database db(schema);
  db.Insert(topic_rel, {101, 1});  // paper 101 is about topic 1
  db.Insert(topic_rel, {102, 2});
  db.Insert(prefers_rel, {7, 1});  // reviewer 7 likes topic 1
  db.Insert(prefers_rel, {8, 1});
  db.Insert(prefers_rel, {9, 2});
  std::mt19937 rng(3);
  std::printf("== A sampled run (attributes: paper, author, reviewer, topic) ==\n");
  for (int tries = 0; tries < 50; ++tries) {
    auto run = SampleRun(*workflow, db, 6, rng);
    if (run.has_value()) {
      std::printf("  %s\n\n", run->ToString(*workflow).c_str());
      break;
    }
  }

  // --- Views ---
  std::printf("== Author view: {paper, topic} visible, database hidden ==\n");
  Theorem24Stats stats;
  auto author_view =
      MakeHiddenDatabaseView(*workflow, {attr_paper, attr_topic}, &stats);
  if (author_view.ok()) {
    std::printf(
        "  enhanced automaton: %d states, %d transitions; constraints: "
        "%d equality, %d inequality, %d tuple, %d finiteness (%d literal "
        "pairs dropped)\n",
        author_view->automaton().num_states(),
        author_view->automaton().num_transitions(),
        stats.num_equality_constraints, stats.num_inequality_constraints,
        stats.num_tuple_constraints, stats.num_finiteness_constraints,
        stats.skipped_literal_pairs);
  } else {
    std::printf("  view synthesis failed: %s\n",
                author_view.status().ToString().c_str());
  }

  std::printf(
      "\n== Double-blind reviewer view: {paper, reviewer, topic} ==\n");
  auto reviewer_view = MakeHiddenDatabaseView(
      *workflow, {attr_paper, attr_reviewer, attr_topic}, &stats);
  if (reviewer_view.ok()) {
    std::printf(
        "  enhanced automaton: %d states, %d transitions; constraints: "
        "%d equality, %d inequality, %d tuple, %d finiteness\n",
        reviewer_view->automaton().num_states(),
        reviewer_view->automaton().num_transitions(),
        stats.num_equality_constraints, stats.num_inequality_constraints,
        stats.num_tuple_constraints, stats.num_finiteness_constraints);
    std::printf(
        "  (the reviewer-assignment inequality 'reviewer+ ≠ author' is now "
        "a global constraint relating visible registers across the hidden "
        "author)\n");
  } else {
    std::printf("  view synthesis failed: %s\n",
                reviewer_view.status().ToString().c_str());
  }
  std::printf("\nDone.\n");
  return 0;
}
