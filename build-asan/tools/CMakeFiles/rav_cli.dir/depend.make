# Empty dependencies file for rav_cli.
# This may be replaced when dependencies are built.
