file(REMOVE_RECURSE
  "CMakeFiles/rav_cli.dir/rav_cli.cc.o"
  "CMakeFiles/rav_cli.dir/rav_cli.cc.o.d"
  "rav_cli"
  "rav_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
