# Empty compiler generated dependencies file for quasi_regular_test.
# This may be replaced when dependencies are built.
