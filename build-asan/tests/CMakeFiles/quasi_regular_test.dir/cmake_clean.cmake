file(REMOVE_RECURSE
  "CMakeFiles/quasi_regular_test.dir/quasi_regular_test.cc.o"
  "CMakeFiles/quasi_regular_test.dir/quasi_regular_test.cc.o.d"
  "quasi_regular_test"
  "quasi_regular_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasi_regular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
