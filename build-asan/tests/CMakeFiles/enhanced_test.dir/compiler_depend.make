# Empty compiler generated dependencies file for enhanced_test.
# This may be replaced when dependencies are built.
