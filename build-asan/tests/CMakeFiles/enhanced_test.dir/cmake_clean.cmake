file(REMOVE_RECURSE
  "CMakeFiles/enhanced_test.dir/enhanced_test.cc.o"
  "CMakeFiles/enhanced_test.dir/enhanced_test.cc.o.d"
  "enhanced_test"
  "enhanced_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
