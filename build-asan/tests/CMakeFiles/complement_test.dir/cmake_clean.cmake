file(REMOVE_RECURSE
  "CMakeFiles/complement_test.dir/complement_test.cc.o"
  "CMakeFiles/complement_test.dir/complement_test.cc.o.d"
  "complement_test"
  "complement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
