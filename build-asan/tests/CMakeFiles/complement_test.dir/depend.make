# Empty dependencies file for complement_test.
# This may be replaced when dependencies are built.
