file(REMOVE_RECURSE
  "CMakeFiles/era_test.dir/era_test.cc.o"
  "CMakeFiles/era_test.dir/era_test.cc.o.d"
  "era_test"
  "era_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/era_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
