# Empty compiler generated dependencies file for era_test.
# This may be replaced when dependencies are built.
