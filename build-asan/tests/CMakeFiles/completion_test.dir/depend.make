# Empty dependencies file for completion_test.
# This may be replaced when dependencies are built.
