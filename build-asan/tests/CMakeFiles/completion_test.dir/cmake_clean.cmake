file(REMOVE_RECURSE
  "CMakeFiles/completion_test.dir/completion_test.cc.o"
  "CMakeFiles/completion_test.dir/completion_test.cc.o.d"
  "completion_test"
  "completion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/completion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
