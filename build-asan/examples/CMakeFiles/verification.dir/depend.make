# Empty dependencies file for verification.
# This may be replaced when dependencies are built.
