file(REMOVE_RECURSE
  "CMakeFiles/verification.dir/verification.cc.o"
  "CMakeFiles/verification.dir/verification.cc.o.d"
  "verification"
  "verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
