file(REMOVE_RECURSE
  "CMakeFiles/reviewing_workflow.dir/reviewing_workflow.cc.o"
  "CMakeFiles/reviewing_workflow.dir/reviewing_workflow.cc.o.d"
  "reviewing_workflow"
  "reviewing_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reviewing_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
