# Empty dependencies file for reviewing_workflow.
# This may be replaced when dependencies are built.
