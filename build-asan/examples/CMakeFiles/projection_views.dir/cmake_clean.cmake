file(REMOVE_RECURSE
  "CMakeFiles/projection_views.dir/projection_views.cc.o"
  "CMakeFiles/projection_views.dir/projection_views.cc.o.d"
  "projection_views"
  "projection_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
