# Empty dependencies file for projection_views.
# This may be replaced when dependencies are built.
