file(REMOVE_RECURSE
  "CMakeFiles/database_views.dir/database_views.cc.o"
  "CMakeFiles/database_views.dir/database_views.cc.o.d"
  "database_views"
  "database_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
