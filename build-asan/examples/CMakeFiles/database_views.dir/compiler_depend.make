# Empty compiler generated dependencies file for database_views.
# This may be replaced when dependencies are built.
