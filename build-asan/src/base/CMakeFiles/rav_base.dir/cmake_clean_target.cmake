file(REMOVE_RECURSE
  "librav_base.a"
)
