# Empty dependencies file for rav_base.
# This may be replaced when dependencies are built.
