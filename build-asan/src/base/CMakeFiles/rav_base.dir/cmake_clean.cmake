file(REMOVE_RECURSE
  "CMakeFiles/rav_base.dir/arena.cc.o"
  "CMakeFiles/rav_base.dir/arena.cc.o.d"
  "CMakeFiles/rav_base.dir/numbers.cc.o"
  "CMakeFiles/rav_base.dir/numbers.cc.o.d"
  "CMakeFiles/rav_base.dir/status.cc.o"
  "CMakeFiles/rav_base.dir/status.cc.o.d"
  "CMakeFiles/rav_base.dir/union_find.cc.o"
  "CMakeFiles/rav_base.dir/union_find.cc.o.d"
  "librav_base.a"
  "librav_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
