file(REMOVE_RECURSE
  "CMakeFiles/rav_workflow.dir/builder.cc.o"
  "CMakeFiles/rav_workflow.dir/builder.cc.o.d"
  "CMakeFiles/rav_workflow.dir/properties.cc.o"
  "CMakeFiles/rav_workflow.dir/properties.cc.o.d"
  "CMakeFiles/rav_workflow.dir/view.cc.o"
  "CMakeFiles/rav_workflow.dir/view.cc.o.d"
  "librav_workflow.a"
  "librav_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
