# Empty dependencies file for rav_workflow.
# This may be replaced when dependencies are built.
