file(REMOVE_RECURSE
  "librav_workflow.a"
)
