file(REMOVE_RECURSE
  "librav_types.a"
)
