# Empty compiler generated dependencies file for rav_types.
# This may be replaced when dependencies are built.
