file(REMOVE_RECURSE
  "CMakeFiles/rav_types.dir/completion.cc.o"
  "CMakeFiles/rav_types.dir/completion.cc.o.d"
  "CMakeFiles/rav_types.dir/type.cc.o"
  "CMakeFiles/rav_types.dir/type.cc.o.d"
  "librav_types.a"
  "librav_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
