file(REMOVE_RECURSE
  "librav_era.a"
)
