file(REMOVE_RECURSE
  "CMakeFiles/rav_era.dir/constraint_graph.cc.o"
  "CMakeFiles/rav_era.dir/constraint_graph.cc.o.d"
  "CMakeFiles/rav_era.dir/emptiness.cc.o"
  "CMakeFiles/rav_era.dir/emptiness.cc.o.d"
  "CMakeFiles/rav_era.dir/extended_automaton.cc.o"
  "CMakeFiles/rav_era.dir/extended_automaton.cc.o.d"
  "CMakeFiles/rav_era.dir/ltlfo.cc.o"
  "CMakeFiles/rav_era.dir/ltlfo.cc.o.d"
  "CMakeFiles/rav_era.dir/parallel_search.cc.o"
  "CMakeFiles/rav_era.dir/parallel_search.cc.o.d"
  "CMakeFiles/rav_era.dir/prop6.cc.o"
  "CMakeFiles/rav_era.dir/prop6.cc.o.d"
  "CMakeFiles/rav_era.dir/quasi_regular.cc.o"
  "CMakeFiles/rav_era.dir/quasi_regular.cc.o.d"
  "CMakeFiles/rav_era.dir/run_check.cc.o"
  "CMakeFiles/rav_era.dir/run_check.cc.o.d"
  "CMakeFiles/rav_era.dir/simulate_era.cc.o"
  "CMakeFiles/rav_era.dir/simulate_era.cc.o.d"
  "librav_era.a"
  "librav_era.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_era.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
