# Empty dependencies file for rav_era.
# This may be replaced when dependencies are built.
