# Empty compiler generated dependencies file for rav_era.
# This may be replaced when dependencies are built.
