file(REMOVE_RECURSE
  "CMakeFiles/rav_io.dir/text_format.cc.o"
  "CMakeFiles/rav_io.dir/text_format.cc.o.d"
  "librav_io.a"
  "librav_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
