file(REMOVE_RECURSE
  "librav_io.a"
)
