# Empty compiler generated dependencies file for rav_io.
# This may be replaced when dependencies are built.
