# Empty dependencies file for rav_automata.
# This may be replaced when dependencies are built.
