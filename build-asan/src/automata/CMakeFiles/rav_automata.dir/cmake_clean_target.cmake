file(REMOVE_RECURSE
  "librav_automata.a"
)
