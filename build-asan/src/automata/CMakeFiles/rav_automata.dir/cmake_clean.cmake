file(REMOVE_RECURSE
  "CMakeFiles/rav_automata.dir/complement.cc.o"
  "CMakeFiles/rav_automata.dir/complement.cc.o.d"
  "CMakeFiles/rav_automata.dir/dfa.cc.o"
  "CMakeFiles/rav_automata.dir/dfa.cc.o.d"
  "CMakeFiles/rav_automata.dir/dfa_to_regex.cc.o"
  "CMakeFiles/rav_automata.dir/dfa_to_regex.cc.o.d"
  "CMakeFiles/rav_automata.dir/lasso.cc.o"
  "CMakeFiles/rav_automata.dir/lasso.cc.o.d"
  "CMakeFiles/rav_automata.dir/nba.cc.o"
  "CMakeFiles/rav_automata.dir/nba.cc.o.d"
  "CMakeFiles/rav_automata.dir/nfa.cc.o"
  "CMakeFiles/rav_automata.dir/nfa.cc.o.d"
  "CMakeFiles/rav_automata.dir/regex.cc.o"
  "CMakeFiles/rav_automata.dir/regex.cc.o.d"
  "librav_automata.a"
  "librav_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
