
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/complement.cc" "src/automata/CMakeFiles/rav_automata.dir/complement.cc.o" "gcc" "src/automata/CMakeFiles/rav_automata.dir/complement.cc.o.d"
  "/root/repo/src/automata/dfa.cc" "src/automata/CMakeFiles/rav_automata.dir/dfa.cc.o" "gcc" "src/automata/CMakeFiles/rav_automata.dir/dfa.cc.o.d"
  "/root/repo/src/automata/dfa_to_regex.cc" "src/automata/CMakeFiles/rav_automata.dir/dfa_to_regex.cc.o" "gcc" "src/automata/CMakeFiles/rav_automata.dir/dfa_to_regex.cc.o.d"
  "/root/repo/src/automata/lasso.cc" "src/automata/CMakeFiles/rav_automata.dir/lasso.cc.o" "gcc" "src/automata/CMakeFiles/rav_automata.dir/lasso.cc.o.d"
  "/root/repo/src/automata/nba.cc" "src/automata/CMakeFiles/rav_automata.dir/nba.cc.o" "gcc" "src/automata/CMakeFiles/rav_automata.dir/nba.cc.o.d"
  "/root/repo/src/automata/nfa.cc" "src/automata/CMakeFiles/rav_automata.dir/nfa.cc.o" "gcc" "src/automata/CMakeFiles/rav_automata.dir/nfa.cc.o.d"
  "/root/repo/src/automata/regex.cc" "src/automata/CMakeFiles/rav_automata.dir/regex.cc.o" "gcc" "src/automata/CMakeFiles/rav_automata.dir/regex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/base/CMakeFiles/rav_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
