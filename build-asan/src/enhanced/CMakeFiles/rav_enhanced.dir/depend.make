# Empty dependencies file for rav_enhanced.
# This may be replaced when dependencies are built.
