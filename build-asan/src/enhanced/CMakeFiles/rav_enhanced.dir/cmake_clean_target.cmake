file(REMOVE_RECURSE
  "librav_enhanced.a"
)
