file(REMOVE_RECURSE
  "CMakeFiles/rav_enhanced.dir/enhanced_automaton.cc.o"
  "CMakeFiles/rav_enhanced.dir/enhanced_automaton.cc.o.d"
  "CMakeFiles/rav_enhanced.dir/theorem24.cc.o"
  "CMakeFiles/rav_enhanced.dir/theorem24.cc.o.d"
  "librav_enhanced.a"
  "librav_enhanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_enhanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
