# Empty compiler generated dependencies file for rav_enhanced.
# This may be replaced when dependencies are built.
