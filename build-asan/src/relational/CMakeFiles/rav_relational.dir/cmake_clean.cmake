file(REMOVE_RECURSE
  "CMakeFiles/rav_relational.dir/database.cc.o"
  "CMakeFiles/rav_relational.dir/database.cc.o.d"
  "CMakeFiles/rav_relational.dir/formula.cc.o"
  "CMakeFiles/rav_relational.dir/formula.cc.o.d"
  "CMakeFiles/rav_relational.dir/query.cc.o"
  "CMakeFiles/rav_relational.dir/query.cc.o.d"
  "CMakeFiles/rav_relational.dir/schema.cc.o"
  "CMakeFiles/rav_relational.dir/schema.cc.o.d"
  "librav_relational.a"
  "librav_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
