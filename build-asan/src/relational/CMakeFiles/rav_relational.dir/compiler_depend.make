# Empty compiler generated dependencies file for rav_relational.
# This may be replaced when dependencies are built.
