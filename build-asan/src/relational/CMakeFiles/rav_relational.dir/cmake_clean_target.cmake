file(REMOVE_RECURSE
  "librav_relational.a"
)
