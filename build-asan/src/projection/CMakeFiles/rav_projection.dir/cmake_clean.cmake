file(REMOVE_RECURSE
  "CMakeFiles/rav_projection.dir/lemma21.cc.o"
  "CMakeFiles/rav_projection.dir/lemma21.cc.o.d"
  "CMakeFiles/rav_projection.dir/lr_bounded.cc.o"
  "CMakeFiles/rav_projection.dir/lr_bounded.cc.o.d"
  "CMakeFiles/rav_projection.dir/project_era.cc.o"
  "CMakeFiles/rav_projection.dir/project_era.cc.o.d"
  "CMakeFiles/rav_projection.dir/project_ra.cc.o"
  "CMakeFiles/rav_projection.dir/project_ra.cc.o.d"
  "CMakeFiles/rav_projection.dir/prop22.cc.o"
  "CMakeFiles/rav_projection.dir/prop22.cc.o.d"
  "librav_projection.a"
  "librav_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
