file(REMOVE_RECURSE
  "librav_projection.a"
)
