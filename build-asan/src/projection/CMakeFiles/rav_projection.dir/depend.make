# Empty dependencies file for rav_projection.
# This may be replaced when dependencies are built.
