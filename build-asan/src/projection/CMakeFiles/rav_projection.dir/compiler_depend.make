# Empty compiler generated dependencies file for rav_projection.
# This may be replaced when dependencies are built.
