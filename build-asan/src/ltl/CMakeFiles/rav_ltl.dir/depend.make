# Empty dependencies file for rav_ltl.
# This may be replaced when dependencies are built.
