file(REMOVE_RECURSE
  "CMakeFiles/rav_ltl.dir/ltl.cc.o"
  "CMakeFiles/rav_ltl.dir/ltl.cc.o.d"
  "CMakeFiles/rav_ltl.dir/tableau.cc.o"
  "CMakeFiles/rav_ltl.dir/tableau.cc.o.d"
  "librav_ltl.a"
  "librav_ltl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_ltl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
