file(REMOVE_RECURSE
  "librav_ltl.a"
)
