# Empty compiler generated dependencies file for rav_ltl.
# This may be replaced when dependencies are built.
