file(REMOVE_RECURSE
  "CMakeFiles/rav_ra.dir/control.cc.o"
  "CMakeFiles/rav_ra.dir/control.cc.o.d"
  "CMakeFiles/rav_ra.dir/emptiness.cc.o"
  "CMakeFiles/rav_ra.dir/emptiness.cc.o.d"
  "CMakeFiles/rav_ra.dir/intersect.cc.o"
  "CMakeFiles/rav_ra.dir/intersect.cc.o.d"
  "CMakeFiles/rav_ra.dir/lasso_search.cc.o"
  "CMakeFiles/rav_ra.dir/lasso_search.cc.o.d"
  "CMakeFiles/rav_ra.dir/random.cc.o"
  "CMakeFiles/rav_ra.dir/random.cc.o.d"
  "CMakeFiles/rav_ra.dir/register_automaton.cc.o"
  "CMakeFiles/rav_ra.dir/register_automaton.cc.o.d"
  "CMakeFiles/rav_ra.dir/run.cc.o"
  "CMakeFiles/rav_ra.dir/run.cc.o.d"
  "CMakeFiles/rav_ra.dir/simulate.cc.o"
  "CMakeFiles/rav_ra.dir/simulate.cc.o.d"
  "CMakeFiles/rav_ra.dir/transform.cc.o"
  "CMakeFiles/rav_ra.dir/transform.cc.o.d"
  "librav_ra.a"
  "librav_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rav_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
