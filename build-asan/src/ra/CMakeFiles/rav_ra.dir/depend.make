# Empty dependencies file for rav_ra.
# This may be replaced when dependencies are built.
