
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ra/control.cc" "src/ra/CMakeFiles/rav_ra.dir/control.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/control.cc.o.d"
  "/root/repo/src/ra/emptiness.cc" "src/ra/CMakeFiles/rav_ra.dir/emptiness.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/emptiness.cc.o.d"
  "/root/repo/src/ra/intersect.cc" "src/ra/CMakeFiles/rav_ra.dir/intersect.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/intersect.cc.o.d"
  "/root/repo/src/ra/lasso_search.cc" "src/ra/CMakeFiles/rav_ra.dir/lasso_search.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/lasso_search.cc.o.d"
  "/root/repo/src/ra/random.cc" "src/ra/CMakeFiles/rav_ra.dir/random.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/random.cc.o.d"
  "/root/repo/src/ra/register_automaton.cc" "src/ra/CMakeFiles/rav_ra.dir/register_automaton.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/register_automaton.cc.o.d"
  "/root/repo/src/ra/run.cc" "src/ra/CMakeFiles/rav_ra.dir/run.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/run.cc.o.d"
  "/root/repo/src/ra/simulate.cc" "src/ra/CMakeFiles/rav_ra.dir/simulate.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/simulate.cc.o.d"
  "/root/repo/src/ra/transform.cc" "src/ra/CMakeFiles/rav_ra.dir/transform.cc.o" "gcc" "src/ra/CMakeFiles/rav_ra.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/base/CMakeFiles/rav_base.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/relational/CMakeFiles/rav_relational.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/types/CMakeFiles/rav_types.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/automata/CMakeFiles/rav_automata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
