file(REMOVE_RECURSE
  "librav_ra.a"
)
