# Empty compiler generated dependencies file for bench_type_completion.
# This may be replaced when dependencies are built.
