file(REMOVE_RECURSE
  "CMakeFiles/bench_type_completion.dir/bench_type_completion.cc.o"
  "CMakeFiles/bench_type_completion.dir/bench_type_completion.cc.o.d"
  "bench_type_completion"
  "bench_type_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_type_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
