file(REMOVE_RECURSE
  "CMakeFiles/bench_prop6.dir/bench_prop6.cc.o"
  "CMakeFiles/bench_prop6.dir/bench_prop6.cc.o.d"
  "bench_prop6"
  "bench_prop6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
