# Empty dependencies file for bench_prop6.
# This may be replaced when dependencies are built.
