file(REMOVE_RECURSE
  "CMakeFiles/bench_ltlfo.dir/bench_ltlfo.cc.o"
  "CMakeFiles/bench_ltlfo.dir/bench_ltlfo.cc.o.d"
  "bench_ltlfo"
  "bench_ltlfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ltlfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
