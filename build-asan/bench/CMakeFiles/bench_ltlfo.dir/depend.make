# Empty dependencies file for bench_ltlfo.
# This may be replaced when dependencies are built.
