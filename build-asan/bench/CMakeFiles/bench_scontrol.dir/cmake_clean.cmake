file(REMOVE_RECURSE
  "CMakeFiles/bench_scontrol.dir/bench_scontrol.cc.o"
  "CMakeFiles/bench_scontrol.dir/bench_scontrol.cc.o.d"
  "bench_scontrol"
  "bench_scontrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
