# Empty dependencies file for bench_scontrol.
# This may be replaced when dependencies are built.
