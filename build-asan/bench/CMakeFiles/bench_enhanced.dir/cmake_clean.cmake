file(REMOVE_RECURSE
  "CMakeFiles/bench_enhanced.dir/bench_enhanced.cc.o"
  "CMakeFiles/bench_enhanced.dir/bench_enhanced.cc.o.d"
  "bench_enhanced"
  "bench_enhanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enhanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
