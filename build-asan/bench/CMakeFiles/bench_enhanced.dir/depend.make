# Empty dependencies file for bench_enhanced.
# This may be replaced when dependencies are built.
