file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pump.dir/bench_ablation_pump.cc.o"
  "CMakeFiles/bench_ablation_pump.dir/bench_ablation_pump.cc.o.d"
  "bench_ablation_pump"
  "bench_ablation_pump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
