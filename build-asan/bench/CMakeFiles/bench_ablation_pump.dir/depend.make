# Empty dependencies file for bench_ablation_pump.
# This may be replaced when dependencies are built.
