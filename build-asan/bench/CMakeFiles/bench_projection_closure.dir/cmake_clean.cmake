file(REMOVE_RECURSE
  "CMakeFiles/bench_projection_closure.dir/bench_projection_closure.cc.o"
  "CMakeFiles/bench_projection_closure.dir/bench_projection_closure.cc.o.d"
  "bench_projection_closure"
  "bench_projection_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_projection_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
