# Empty dependencies file for bench_projection_closure.
# This may be replaced when dependencies are built.
