# Empty compiler generated dependencies file for bench_state_driven.
# This may be replaced when dependencies are built.
