file(REMOVE_RECURSE
  "CMakeFiles/bench_state_driven.dir/bench_state_driven.cc.o"
  "CMakeFiles/bench_state_driven.dir/bench_state_driven.cc.o.d"
  "bench_state_driven"
  "bench_state_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
