# Empty dependencies file for bench_witness_synthesis.
# This may be replaced when dependencies are built.
