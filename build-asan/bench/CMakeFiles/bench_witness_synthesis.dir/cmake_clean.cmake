file(REMOVE_RECURSE
  "CMakeFiles/bench_witness_synthesis.dir/bench_witness_synthesis.cc.o"
  "CMakeFiles/bench_witness_synthesis.dir/bench_witness_synthesis.cc.o.d"
  "bench_witness_synthesis"
  "bench_witness_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_witness_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
