file(REMOVE_RECURSE
  "CMakeFiles/bench_prop22.dir/bench_prop22.cc.o"
  "CMakeFiles/bench_prop22.dir/bench_prop22.cc.o.d"
  "bench_prop22"
  "bench_prop22.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop22.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
