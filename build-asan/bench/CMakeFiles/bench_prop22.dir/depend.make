# Empty dependencies file for bench_prop22.
# This may be replaced when dependencies are built.
