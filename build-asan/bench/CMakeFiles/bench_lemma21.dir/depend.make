# Empty dependencies file for bench_lemma21.
# This may be replaced when dependencies are built.
