file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma21.dir/bench_lemma21.cc.o"
  "CMakeFiles/bench_lemma21.dir/bench_lemma21.cc.o.d"
  "bench_lemma21"
  "bench_lemma21.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma21.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
