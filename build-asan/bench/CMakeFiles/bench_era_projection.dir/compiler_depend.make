# Empty compiler generated dependencies file for bench_era_projection.
# This may be replaced when dependencies are built.
