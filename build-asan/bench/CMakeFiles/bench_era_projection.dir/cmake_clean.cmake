file(REMOVE_RECURSE
  "CMakeFiles/bench_era_projection.dir/bench_era_projection.cc.o"
  "CMakeFiles/bench_era_projection.dir/bench_era_projection.cc.o.d"
  "bench_era_projection"
  "bench_era_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_era_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
