file(REMOVE_RECURSE
  "CMakeFiles/bench_lr_bounded.dir/bench_lr_bounded.cc.o"
  "CMakeFiles/bench_lr_bounded.dir/bench_lr_bounded.cc.o.d"
  "bench_lr_bounded"
  "bench_lr_bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lr_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
