# Empty compiler generated dependencies file for bench_lr_bounded.
# This may be replaced when dependencies are built.
