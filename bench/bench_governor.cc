// E19/E20 — Resource-governed execution (docs/robustness.md).
// Claim: threading an armed-but-untripped ExecutionGovernor through the
// emptiness search costs ≤3% over the ungoverned run (the safe-point
// polls are per-candidate, not per-node), and a tripped deadline stops
// the search within one candidate's evaluation of the requested instant.
// Counters: governed (0/1), stop_reason, enumerated; the BM_TimeToTrip
// rows additionally report deadline_ms (the requested budget) and
// overshoot_ms (wall time past the deadline when the search returned —
// the E20 accuracy measure).

#include <benchmark/benchmark.h>

#include <chrono>

#include "base/governor.h"
#include "bench_common.h"
#include "era/emptiness.h"

RAV_BENCH_EXPERIMENT(
    "E19",
    "Governed execution is ~free until it trips: an unlimited governor "
    "adds <=3% to the emptiness search, and a deadline stops the search "
    "within one candidate of the requested instant (E20).")

namespace rav {
namespace {

EraEmptinessOptions SearchOptions(const ExecutionGovernor* governor) {
  // The all-reject workload of bench_emptiness: every candidate builds a
  // full closure and is rejected, so the search is long and the per-
  // candidate governor poll is exercised on every single candidate.
  EraEmptinessOptions options;
  options.max_lasso_length = 10;
  options.max_lassos = 2000;
  options.governor = governor;
  return options;
}

// E19 baseline: the search with no governor (the nullptr fast path).
void BM_GovernedSearchOverhead_Off(benchmark::State& state) {
  ExtendedAutomaton era = bench::CompletedEra(
      bench::MakeShiftRingSearchEra(2, 4, /*contradictory=*/true));
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessResult last;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(era, alphabet, SearchOptions(nullptr));
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["governed"] = 0;
  state.counters["stop_reason"] = static_cast<double>(last.stats.stop_reason);
  state.counters["enumerated"] =
      static_cast<double>(last.stats.lassos_enumerated);
}
BENCHMARK(BM_GovernedSearchOverhead_Off);

// E19 measurement: identical search under an unlimited governor — every
// safe point polls, nothing ever trips. The ratio of this row to the
// _Off row is the governed overhead the ≤3% claim is about.
void BM_GovernedSearchOverhead_On(benchmark::State& state) {
  ExtendedAutomaton era = bench::CompletedEra(
      bench::MakeShiftRingSearchEra(2, 4, /*contradictory=*/true));
  ControlAlphabet alphabet(era.automaton());
  ExecutionGovernor governor;
  EraEmptinessResult last;
  for (auto _ : state) {
    auto result =
        CheckEraEmptiness(era, alphabet, SearchOptions(&governor));
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  RAV_CHECK(governor.trip() == GovernorTrip::kNone);
  state.counters["governed"] = 1;
  state.counters["stop_reason"] = static_cast<double>(last.stats.stop_reason);
  state.counters["enumerated"] =
      static_cast<double>(last.stats.lassos_enumerated);
}
BENCHMARK(BM_GovernedSearchOverhead_On);

// E20: arm a deadline of range(0) milliseconds against a search whose
// ungoverned run is much longer, and measure the overshoot — how far
// past the deadline the truncated result actually returned. The claim is
// that overshoot stays within one candidate's evaluation (well under a
// millisecond here), independent of the deadline's magnitude.
void BM_TimeToTrip(benchmark::State& state) {
  const auto deadline_ms = std::chrono::milliseconds(state.range(0));
  ExtendedAutomaton era = bench::CompletedEra(
      bench::MakeShiftRingSearchEra(2, 6, /*contradictory=*/true));
  ControlAlphabet alphabet(era.automaton());
  double worst_overshoot_ms = 0.0;
  for (auto _ : state) {
    ExecutionGovernor governor;
    governor.set_deadline_after(deadline_ms);
    EraEmptinessOptions options = SearchOptions(&governor);
    options.max_lassos = 1000000;
    options.max_search_steps = 100000000;
    const auto start = std::chrono::steady_clock::now();
    auto result = CheckEraEmptiness(era, alphabet, options);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    RAV_CHECK(result.ok());
    RAV_CHECK(result->stats.stop_reason == SearchStopReason::kDeadline);
    worst_overshoot_ms = std::max(
        worst_overshoot_ms,
        wall_ms - static_cast<double>(deadline_ms.count()));
    benchmark::DoNotOptimize(result);
  }
  state.counters["deadline_ms"] = static_cast<double>(deadline_ms.count());
  state.counters["overshoot_ms"] = worst_overshoot_ms;
}
BENCHMARK(BM_TimeToTrip)->Arg(2)->Arg(10)->Arg(25);

}  // namespace
}  // namespace rav
