// E11 — LR-boundedness (Definition 15 / Theorem 18, Examples 16 and 17).
// Claim: LR-bounded automata have a stable max vertex cover across window
// pumps (Example 16: cover 1); the all-distinct automaton's cover grows
// with the window (Example 17: not LR-bounded, hence not a projection of
// any register automaton by Theorem 19).
// Counters: max_cover, growth (1 = unbounded evidence), lassos,
// stop_reason (SearchStopReason enum value: 1 exhausted, 2 length-bound,
// 3 lasso-budget, 4 step-budget), workers.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "projection/lr_bounded.h"
#include "ra/transform.h"

namespace rav {
namespace {

void AddSearchCounters(benchmark::State& state, const SearchStats& stats) {
  state.counters["stop_reason"] = static_cast<double>(stats.stop_reason);
  state.counters["enumerated"] = static_cast<double>(stats.lassos_enumerated);
  state.counters["closures"] = static_cast<double>(stats.closures_built);
  state.counters["extended"] = static_cast<double>(stats.closures_extended);
  state.counters["workers"] = static_cast<double>(stats.workers);
}

ExtendedAutomaton MakeDistinctWithin(int window) {
  // Values within distance `window` pairwise distinct: LR-bounded with
  // cover ~ window.
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  ExtendedAutomaton era(std::move(a));
  std::string expr = "q";
  for (int i = 0; i < window; ++i) expr += " q?";
  // q q?^w but at least length 2: approximate with union of fixed gaps.
  // Simpler: exact-gap constraints for each gap in [1, window].
  (void)expr;
  for (int gapped = 1; gapped <= window; ++gapped) {
    std::string e = "q";
    for (int i = 0; i < gapped; ++i) e += " q";
    RAV_CHECK(era.AddConstraintFromText(
        RegisterPair{RegisterId(0), RegisterId(0)}, false, e).ok());
  }
  return era;
}

void BM_LrBoundWindowFamily(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  ExtendedAutomaton era = MakeDistinctWithin(window);
  ControlAlphabet alphabet(era.automaton());
  LrBoundOptions options;
  options.max_lassos = 16;
  int cover = 0;
  bool growth = true;
  for (auto _ : state) {
    auto bound = EstimateLrBound(era, alphabet, options);
    RAV_CHECK(bound.ok());
    cover = bound->max_cover;
    growth = bound->growth_detected;
    benchmark::DoNotOptimize(bound);
  }
  state.counters["window"] = window;
  state.counters["max_cover"] = cover;
  state.counters["growth"] = growth;
}
BENCHMARK(BM_LrBoundWindowFamily)->DenseRange(1, 4);

void BM_LrBoundShiftRingParallel(benchmark::State& state) {
  // Cover sampling over the skip-edge shift ring with cross-position
  // inequality constraints — enough per-lasso matching work for the
  // worker pool to matter. Arg = worker count; the fold (max over
  // covers, or over growth flags) is order-independent, and the result
  // is checked identical to the serial reference on every run.
  const int workers = static_cast<int>(state.range(0));
  ExtendedAutomaton era = bench::MakeShiftRingSearchEra(4, 6, false);
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "s0 .* s3").ok());
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "s1 .* s4").ok());
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "s2 .* s5").ok());
  ControlAlphabet alphabet(era.automaton());
  LrBoundOptions options;
  options.max_lassos = 64;
  options.max_lasso_length = 10;
  options.num_workers = workers;
  LrBoundOptions serial = options;
  serial.num_workers = 1;
  auto reference = EstimateLrBound(era, alphabet, serial);
  RAV_CHECK(reference.ok());
  LrBoundResult last;
  for (auto _ : state) {
    auto bound = EstimateLrBound(era, alphabet, options);
    RAV_CHECK(bound.ok());
    last = *bound;
    benchmark::DoNotOptimize(bound);
  }
  RAV_CHECK(last.max_cover == reference->max_cover);
  RAV_CHECK(last.growth_detected == reference->growth_detected);
  RAV_CHECK(last.stats.stop_reason == reference->stats.stop_reason);
  state.counters["max_cover"] = last.max_cover;
  state.counters["growth"] = last.growth_detected;
  AddSearchCounters(state, last.stats);
}
BENCHMARK(BM_LrBoundShiftRingParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_LrBoundAllDistinct(benchmark::State& state) {
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  ExtendedAutomaton era(std::move(a));
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "q q+").ok());
  ControlAlphabet alphabet(era.automaton());
  LrBoundResult last;
  for (auto _ : state) {
    auto bound = EstimateLrBound(era, alphabet);
    RAV_CHECK(bound.ok());
    last = *bound;
    benchmark::DoNotOptimize(bound);
  }
  state.counters["growth"] = last.growth_detected;  // expected 1
  AddSearchCounters(state, last.stats);
}
BENCHMARK(BM_LrBoundAllDistinct);

void BM_MaxCutVertexCoverScaling(benchmark::State& state) {
  // Direct G^w_h cover computation as the window grows (all-distinct).
  const size_t window = static_cast<size_t>(state.range(0));
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  ExtendedAutomaton era(std::move(a));
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "q q+").ok());
  ControlAlphabet alphabet(era.automaton());
  LassoWord lasso{{}, {0}};
  int cover = 0;
  for (auto _ : state) {
    cover = MaxCutVertexCover(era, alphabet, lasso, window);
    benchmark::DoNotOptimize(cover);
  }
  state.counters["window"] = static_cast<double>(window);
  state.counters["cover"] = cover;
}
BENCHMARK(BM_MaxCutVertexCoverScaling)->RangeMultiplier(2)->Range(4, 32);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E11", "Definition 15 / Theorem 18: LR-boundedness is detectable via max vertex covers of G^w_h; the all-distinct Example 17 shows unbounded growth.")
