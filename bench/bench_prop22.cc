// E12 — Proposition 22: realizing LR-bounded extended automata as
// register-automaton projections.
// Claim: the finite-window subclass realizes with m·(L-1) history
// registers; the paper's general budget is 2M²+1 for vertex-cover bound
// N = M-1. Counters compare both.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "projection/lr_bounded.h"
#include "projection/prop22.h"

namespace rav {
namespace {

ExtendedAutomaton MakeGapDistinct(int gap) {
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  ExtendedAutomaton era(std::move(a));
  std::string e = "q";
  for (int i = 0; i < gap; ++i) e += " q";
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, e).ok());
  return era;
}

void BM_RealizeGapDistinct(benchmark::State& state) {
  const int gap = static_cast<int>(state.range(0));
  ExtendedAutomaton era = MakeGapDistinct(gap);
  Prop22Stats stats;
  for (auto _ : state) {
    auto realized = RealizeLrBoundedEra(era, &stats);
    RAV_CHECK(realized.ok());
    benchmark::DoNotOptimize(realized);
  }
  ControlAlphabet alphabet(era.automaton());
  auto bound = EstimateLrBound(era, alphabet);
  int cover = bound.ok() ? bound->max_cover : -1;
  state.counters["gap"] = gap;
  state.counters["window_L"] = stats.window_length;
  state.counters["registers"] = stats.registers_after;
  state.counters["states"] = stats.states_after;
  state.counters["vertex_cover_N"] = cover;
  state.counters["paper_budget"] = stats.paper_budget_for(cover);
}
BENCHMARK(BM_RealizeGapDistinct)->DenseRange(1, 5);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E12", "Proposition 22: an LR-bounded extended automaton is the projection of a register automaton within the ~2M^2+1 register budget.")
