// E3 — Control = SControl ([19], re-proved in Theorem 9 stage one).
// Claim: for complete automata the symbolic control traces coincide with
// the control traces of real runs; the SControl NBA size scales with
// |Q| x |control symbols|.
// Counters: symbols, nba_states, nba_transitions, agreement (sampled
// control words of real lasso runs accepted by the NBA).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ra/control.h"
#include "ra/simulate.h"
#include "ra/transform.h"

namespace rav {
namespace {

void BM_BuildSControl(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  RegisterAutomaton a =
      MakeStateDriven(Completed(bench::MakeShiftRing(k, s)).value());
  ControlAlphabet alphabet(a);
  int nba_states = 0, nba_transitions = 0;
  for (auto _ : state) {
    Nba nba = BuildSControlNba(a, alphabet);
    nba_states = nba.num_states();
    nba_transitions = nba.num_transitions();
    benchmark::DoNotOptimize(nba);
  }
  state.counters["symbols"] = alphabet.size();
  state.counters["nba_states"] = nba_states;
  state.counters["nba_transitions"] = nba_transitions;
}
BENCHMARK(BM_BuildSControl)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({3, 4});

void BM_ControlWordsAccepted(benchmark::State& state) {
  // Every control word of a real lasso run lies in SControl (the easy
  // inclusion); `agreement` counts validated words per iteration.
  RegisterAutomaton a =
      MakeStateDriven(Completed(bench::MakeExample1()).value());
  ControlAlphabet alphabet(a);
  Nba scontrol = BuildSControlNba(a, alphabet);
  Database db{Schema()};
  int checked = 0;
  int accepted = 0;
  for (auto _ : state) {
    checked = 0;
    accepted = 0;
    EnumerateRuns(a, db, 4, {0, 1}, [&](const FiniteRun& run) {
      for (int ti : a.TransitionsFrom(run.states.back())) {
        const RaTransition& t = a.transition(ti);
        if (t.to != run.states[0]) continue;
        LassoRun lasso{run, 0, ti};
        if (!ValidateLassoRun(a, db, lasso).ok()) continue;
        ++checked;
        LassoWord w = ControlWordOfLassoRun(a, alphabet, lasso);
        accepted += scontrol.AcceptsLasso(w);
      }
      return true;
    });
    benchmark::DoNotOptimize(accepted);
  }
  state.counters["lassos_checked"] = checked;
  state.counters["lassos_accepted"] = accepted;
}
BENCHMARK(BM_ControlWordsAccepted);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E3", "Control = SControl ([19] / Theorem 9 stage one): symbolic control traces are exactly the control traces; SControl is omega-regular.")
