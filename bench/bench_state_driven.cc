// E2 — State-driven conversion blow-up (Section 2, Example 3).
// Claim: the conversion multiplies states by the number of distinct
// guards (quadratic in the automaton size in the worst case).
// Counters: states_in, states_out, transitions_out.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ra/transform.h"

namespace rav {
namespace {

// An automaton with `s` states and `g` distinct guards usable everywhere.
RegisterAutomaton MakeDenseAutomaton(int s, int g) {
  RegisterAutomaton a(2, Schema());
  for (int i = 0; i < s; ++i) a.AddState("s" + std::to_string(i));
  a.SetInitial(StateId(0));
  a.SetFinal(StateId(0));
  std::vector<Type> guards;
  for (int i = 0; i < g; ++i) {
    TypeBuilder b = a.NewGuardBuilder();
    // Distinct guards: vary which pair is equated.
    switch (i % 4) {
      case 0: b.AddEq(b.X(0), b.Y(0)); break;
      case 1: b.AddEq(b.X(1), b.Y(1)); break;
      case 2: b.AddEq(b.X(0), b.Y(1)); break;
      case 3: b.AddEq(b.X(1), b.Y(0)); break;
    }
    if (i >= 4) b.AddNeq(b.X(0), b.X(1));
    guards.push_back(b.Build().value());
  }
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < g; ++j) {
      a.AddTransition(StateId(i), guards[j], StateId((i + 1 + j) % s));
    }
  }
  return a;
}

void BM_MakeStateDriven(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  const int g = static_cast<int>(state.range(1));
  RegisterAutomaton a = MakeDenseAutomaton(s, g);
  int states_out = 0, transitions_out = 0;
  for (auto _ : state) {
    RegisterAutomaton sd = MakeStateDriven(a);
    states_out = sd.num_states();
    transitions_out = sd.num_transitions();
    benchmark::DoNotOptimize(sd);
  }
  state.counters["states_in"] = s;
  state.counters["guards"] = g;
  state.counters["states_out"] = states_out;
  state.counters["transitions_out"] = transitions_out;
}
BENCHMARK(BM_MakeStateDriven)
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Args({16, 8});

void BM_CompletedExample1(benchmark::State& state) {
  RegisterAutomaton a = bench::MakeExample1();
  int transitions_out = 0;
  for (auto _ : state) {
    auto completed = Completed(a);
    transitions_out = completed->num_transitions();
    benchmark::DoNotOptimize(completed);
  }
  state.counters["transitions_in"] = a.num_transitions();
  state.counters["transitions_out"] = transitions_out;
}
BENCHMARK(BM_CompletedExample1);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E2", "State-driven conversion (Example 3): quadratic blow-up, states become (state, guard) pairs and transitions grow with guards squared.")
