// E8 — LTL-FO verification (Theorem 12).
// Claim: verification is decidable via ¬φ-NBA × SControl product plus
// constraint-consistent lasso search; the LTL tableau is exponential in
// the closure.
// Counters: closure, ltl_nba_states, product_states, lassos, holds,
// stop_reason (SearchStopReason enum value: 0 witness-found, 1 exhausted,
// 2 length-bound, 3 lasso-budget, 4 step-budget).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "era/ltlfo.h"

namespace rav {
namespace {

void AddSearchCounters(benchmark::State& state, const SearchStats& stats) {
  state.counters["stop_reason"] = static_cast<double>(stats.stop_reason);
  state.counters["enumerated"] = static_cast<double>(stats.lassos_enumerated);
  state.counters["closures"] = static_cast<double>(stats.closures_built);
  state.counters["extended"] = static_cast<double>(stats.closures_extended);
  state.counters["truncated"] = stats.truncated();
}

RegisterAutomaton MakeOrderWorkflow() {
  RegisterAutomaton a(2, Schema());
  StateId created = a.AddState("created");
  StateId paid = a.AddState("paid");
  StateId shipped = a.AddState("shipped");
  a.SetInitial(created);
  a.SetFinal(shipped);
  TypeBuilder pay = a.NewGuardBuilder();
  pay.AddEq(pay.X(0), pay.Y(0)).AddEq(pay.X(1), pay.Y(1));
  a.AddTransition(created, pay.Build().value(), paid);
  TypeBuilder ship = a.NewGuardBuilder();
  ship.AddEq(ship.X(0), ship.Y(0)).AddEq(ship.X(1), ship.Y(1));
  a.AddTransition(paid, ship.Build().value(), shipped);
  TypeBuilder next = a.NewGuardBuilder();
  next.AddNeq(next.X(0), next.Y(0));
  next.AddEq(next.X(1), next.Y(1));
  a.AddTransition(shipped, next.Build().value(), created);
  return a;
}

LtlFormula NestedGf(int depth) {
  // G F G F ... (p): formula size scales with depth.
  LtlFormula f = LtlFormula::Ap(0);
  for (int i = 0; i < depth; ++i) {
    f = LtlFormula::Globally(LtlFormula::Eventually(std::move(f)));
  }
  return f;
}

void BM_VerifyNestedGf(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  ExtendedAutomaton era(MakeOrderWorkflow());
  LtlFoProperty prop;
  prop.propositions = {Formula::Eq(Term::Var(1), Term::Var(3))};  // x2 = y2
  prop.formula = NestedGf(depth);
  VerificationResult last;
  for (auto _ : state) {
    auto result = VerifyLtlFo(era, prop);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["depth"] = depth;
  state.counters["closure"] = last.ltl_closure_size;
  state.counters["ltl_nba_states"] = last.ltl_nba_states;
  state.counters["product_states"] = last.product_states;
  state.counters["lassos"] = static_cast<double>(last.lassos_tried);
  state.counters["holds"] = last.holds;
  AddSearchCounters(state, last.search_stats);
}
BENCHMARK(BM_VerifyNestedGf)->DenseRange(1, 3);

void BM_VerifyWithConstraints(benchmark::State& state) {
  // The counterexample search must reject constraint-inconsistent lassos.
  ExtendedAutomaton era(MakeOrderWorkflow());
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "created . * created")
                .ok());
  LtlFoProperty prop;
  // G !(x1 = y1 at the created->... loop closing) — shaped so the global
  // freshness constraint matters.
  prop.propositions = {Formula::Eq(Term::Var(0), Term::Var(2))};  // x1 = y1
  prop.formula = LtlFormula::Globally(LtlFormula::Eventually(
      LtlFormula::Not(LtlFormula::Ap(0))));
  VerificationResult last;
  for (auto _ : state) {
    auto result = VerifyLtlFo(era, prop);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["holds"] = last.holds;
  state.counters["lassos"] = static_cast<double>(last.lassos_tried);
  state.counters["product_states"] = last.product_states;
  AddSearchCounters(state, last.search_stats);
}
BENCHMARK(BM_VerifyWithConstraints);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E8", "Theorem 12: LTL-FO verification is decidable; the tableau is exponential in the formula while the product stays proportional to the refined automaton.")
