#ifndef RAV_BENCH_BENCH_COMMON_H_
#define RAV_BENCH_BENCH_COMMON_H_

// Shared fixtures for the experiment suite (see DESIGN.md §4 and
// EXPERIMENTS.md). Each benchmark binary regenerates the data of one
// experiment E1..E14; sizes are chosen so the whole suite completes in a
// few minutes.

#include "era/extended_automaton.h"
#include "ra/register_automaton.h"
#include "ra/transform.h"

namespace rav::bench {

// The experiment a bench binary regenerates: its EXPERIMENTS.md id and
// the paper claim it measures. Every bench .cc defines exactly one via
// RAV_BENCH_EXPERIMENT below; the shared bench_main.cc embeds it in the
// `--report` JSON (see docs/observability.md). A bench without the macro
// fails to link — the report metadata is not optional.
struct ExperimentInfo {
  const char* id;     // "E6"
  const char* claim;  // the paper's claim / expected shape, one sentence
};
ExperimentInfo GetExperimentInfo();

// Example 1 of the paper (the running 2-register automaton).
inline RegisterAutomaton MakeExample1() {
  RegisterAutomaton a(2, Schema());
  StateId q1 = a.AddState("q1");
  StateId q2 = a.AddState("q2");
  a.SetInitial(q1);
  a.SetFinal(q1);
  TypeBuilder d1 = a.NewGuardBuilder();
  d1.AddEq(d1.X(0), d1.X(1)).AddEq(d1.X(1), d1.Y(1));
  a.AddTransition(q1, d1.Build().value(), q2);
  TypeBuilder d2 = a.NewGuardBuilder();
  d2.AddEq(d2.X(1), d2.Y(1));
  a.AddTransition(q2, d2.Build().value(), q2);
  TypeBuilder d3 = a.NewGuardBuilder();
  d3.AddEq(d3.X(1), d3.Y(1)).AddEq(d3.Y(0), d3.Y(1));
  a.AddTransition(q2, d3.Build().value(), q1);
  return a;
}

// A k-register ring automaton with `num_states` states whose guards shift
// registers (x_i = y_{i+1}) — a scalable family with nontrivial equality
// propagation, used wherever a parameterized automaton is needed.
inline RegisterAutomaton MakeShiftRing(int k, int num_states) {
  RegisterAutomaton a(k, Schema());
  for (int s = 0; s < num_states; ++s) {
    a.AddState("s" + std::to_string(s));
  }
  a.SetInitial(StateId(0));
  a.SetFinal(StateId(0));
  for (int s = 0; s < num_states; ++s) {
    TypeBuilder b = a.NewGuardBuilder();
    for (int i = 0; i + 1 < k; ++i) b.AddEq(b.X(i), b.Y(i + 1));
    a.AddTransition(StateId(s), b.Build().value(),
                    StateId((s + 1) % num_states));
  }
  return a;
}

// Example 5's extended automaton (the projection of Example 1).
inline ExtendedAutomaton MakeExample5() {
  RegisterAutomaton b(1, Schema());
  StateId p1 = b.AddState("p1");
  StateId p2 = b.AddState("p2");
  b.SetInitial(p1);
  b.SetFinal(p1);
  Type empty = b.NewGuardBuilder().Build().value();
  b.AddTransition(p1, empty, p2);
  b.AddTransition(p2, empty, p2);
  b.AddTransition(p2, empty, p1);
  ExtendedAutomaton era(std::move(b));
  Status s = era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                       true, "p1 p2* p1");
  RAV_CHECK(s.ok());
  return era;
}

// A search-heavy shift-ring ERA for the parallel lasso-search benchmarks:
// on top of the ring each state gets a skip transition to (s+2)%n with a
// distinct guard (shift plus x1 = y1), so the accepting-lasso space is
// exponential in the length bound. With `contradictory`, an equality and
// an inequality constraint both span every s0...s0 factor of the trace:
// every candidate lasso builds a full constraint closure and is rejected —
// the all-reject workload the parallel engine distributes across workers.
// Without it the ERA is nonempty and the search must return the same first
// witness at any worker count.
inline ExtendedAutomaton MakeShiftRingSearchEra(int k, int n,
                                                bool contradictory) {
  RegisterAutomaton a = MakeShiftRing(k, n);
  for (int s = 0; s < n; ++s) {
    TypeBuilder b = a.NewGuardBuilder();
    for (int i = 0; i + 1 < k; ++i) b.AddEq(b.X(i), b.Y(i + 1));
    b.AddEq(b.X(0), b.Y(0));
    a.AddTransition(StateId(s), b.Build().value(), StateId((s + 2) % n));
  }
  ExtendedAutomaton era(std::move(a));
  if (contradictory) {
    const RegisterPair r00{RegisterId(0), RegisterId(0)};
    RAV_CHECK(era.AddConstraintFromText(r00, true, "s0 .* s0").ok());
    RAV_CHECK(era.AddConstraintFromText(r00, false, "s0 .* s0").ok());
  }
  return era;
}

// Completes an ERA's automaton, carrying the constraints over.
inline ExtendedAutomaton CompletedEra(const ExtendedAutomaton& era) {
  RegisterAutomaton completed = Completed(era.automaton()).value();
  ExtendedAutomaton out(std::move(completed));
  for (const GlobalConstraint& c : era.constraints()) {
    Status s = out.AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality,
                                    c.dfa, c.description);
    RAV_CHECK(s.ok());
  }
  return out;
}

}  // namespace rav::bench

#define RAV_BENCH_EXPERIMENT(experiment_id, experiment_claim)   \
  namespace rav::bench {                                        \
  ExperimentInfo GetExperimentInfo() {                          \
    return ExperimentInfo{experiment_id, experiment_claim};     \
  }                                                             \
  }

#endif  // RAV_BENCH_BENCH_COMMON_H_
