// E13 — Theorem 24: hiding the database.
// Claim: the enhanced-automaton construction (equality + tuple-inequality
// + finiteness constraints) is polynomial in the state-driven automaton
// for a fixed schema. Counters: constraint counts and sizes on Example 23
// and on growing chain variants.

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "enhanced/theorem24.h"
#include "ra/register_automaton.h"

namespace rav {
namespace {

RegisterAutomaton MakeExample23() {
  Schema s;
  RelationId e = s.AddRelation("E", 2);
  RelationId u = s.AddRelation("U", 1);
  RegisterAutomaton a(2, s);
  StateId p = a.AddState("p");
  StateId q = a.AddState("q");
  a.SetInitial(p);
  a.SetFinal(p);
  TypeBuilder d1 = a.NewGuardBuilder();
  d1.AddEq(d1.X(1), d1.Y(1));
  d1.AddAtom(u, {d1.X(0)}, true);
  d1.AddAtom(e, {d1.X(1), d1.X(0)}, true);
  a.AddTransition(p, d1.Build().value(), q);
  TypeBuilder d2 = a.NewGuardBuilder();
  d2.AddEq(d2.X(1), d2.Y(1));
  d2.AddAtom(u, {d2.X(0)}, true);
  d2.AddAtom(e, {d2.X(1), d2.X(0)}, false);
  a.AddTransition(q, d2.Build().value(), p);
  return a;
}

// A cycle of `phases` states alternating E-assertions and denials.
RegisterAutomaton MakePhaseCycle(int phases) {
  Schema s;
  RelationId e = s.AddRelation("E", 2);
  RegisterAutomaton a(2, s);
  for (int i = 0; i < phases; ++i) a.AddState("s" + std::to_string(i));
  a.SetInitial(StateId(0));
  a.SetFinal(StateId(0));
  for (int i = 0; i < phases; ++i) {
    TypeBuilder d = a.NewGuardBuilder();
    d.AddEq(d.X(1), d.Y(1));
    d.AddAtom(e, {d.X(1), d.X(0)}, i % 2 == 0);
    a.AddTransition(StateId(i), d.Build().value(), StateId((i + 1) % phases));
  }
  return a;
}

void BM_Theorem24Example23(benchmark::State& state) {
  RegisterAutomaton a = MakeExample23();
  Theorem24Stats stats;
  for (auto _ : state) {
    auto enhanced = ProjectWithHiddenDatabase(a, 1, &stats);
    RAV_CHECK(enhanced.ok());
    benchmark::DoNotOptimize(enhanced);
  }
  state.counters["equality"] = stats.num_equality_constraints;
  state.counters["inequality"] = stats.num_inequality_constraints;
  state.counters["tuple"] = stats.num_tuple_constraints;
  state.counters["finiteness"] = stats.num_finiteness_constraints;
  state.counters["skipped"] = stats.skipped_literal_pairs;
}
BENCHMARK(BM_Theorem24Example23);

void BM_Theorem24PhaseCycle(benchmark::State& state) {
  const int phases = static_cast<int>(state.range(0));
  RegisterAutomaton a = MakePhaseCycle(phases);
  Theorem24Stats stats;
  for (auto _ : state) {
    auto enhanced = ProjectWithHiddenDatabase(a, 1, &stats);
    RAV_CHECK(enhanced.ok());
    benchmark::DoNotOptimize(enhanced);
  }
  state.counters["phases"] = phases;
  state.counters["tuple"] = stats.num_tuple_constraints;
  state.counters["sd_states"] = stats.state_driven_states;
}
BENCHMARK(BM_Theorem24PhaseCycle)->DenseRange(2, 8, 2);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E13", "Theorem 24: with the database hidden, enhanced automata (equality + tuple inequality + finiteness constraints) capture the projection views.")
