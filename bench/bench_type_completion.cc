// E1 — Type completion blow-up (Section 2, Example 2).
// Claim: completing a σ-type is exponential: the number of equality
// completions of a free type over n variables is the Bell number B(n);
// each relation of arity r multiplies by 2^(classes^r).
// Reported counters: completions = number of complete extensions.

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "types/completion.h"
#include "types/type.h"

namespace rav {
namespace {

void BM_EqualityCompletions(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Type t(2 * k, 0);  // a k-register transition type with no literals
  size_t count = 0;
  for (auto _ : state) {
    count = CountEqualityCompletions(t);
    benchmark::DoNotOptimize(count);
  }
  state.counters["vars"] = 2 * k;
  state.counters["completions"] = static_cast<double>(count);
}
BENCHMARK(BM_EqualityCompletions)->DenseRange(1, 4);

void BM_EqualityCompletionsConstrained(benchmark::State& state) {
  // Example 2: δ2 = (x2 = y2) of Example 1, generalized: k registers with
  // register k glued across the transition.
  const int k = static_cast<int>(state.range(0));
  TypeBuilder b(2 * k, 0);
  b.AddEq(ElementIndex(k - 1), ElementIndex(2 * k - 1));
  Type t = b.Build().value();
  size_t count = 0;
  for (auto _ : state) {
    count = CountEqualityCompletions(t);
    benchmark::DoNotOptimize(count);
  }
  state.counters["completions"] = static_cast<double>(count);
}
BENCHMARK(BM_EqualityCompletionsConstrained)->DenseRange(1, 4);

void BM_FullCompletionsUnary(benchmark::State& state) {
  // One unary relation: each equality completion with c classes fans out
  // into 2^c sign assignments.
  const int k = static_cast<int>(state.range(0));
  Schema s;
  s.AddRelation("P", 1);
  Type t(2 * k, 0);
  size_t count = 0;
  for (auto _ : state) {
    count = EnumerateCompletions(t, s, [](const Type&) { return true; });
    benchmark::DoNotOptimize(count);
  }
  state.counters["completions"] = static_cast<double>(count);
}
BENCHMARK(BM_FullCompletionsUnary)->DenseRange(1, 3);

void BM_FullCompletionsBinary(benchmark::State& state) {
  // A binary relation: 2^(classes²) per equality completion — the blow-up
  // that motivates the non-completing option of Theorem 24.
  const int k = static_cast<int>(state.range(0));
  Schema s;
  s.AddRelation("E", 2);
  Type t(2 * k, 0);
  size_t count = 0;
  for (auto _ : state) {
    count = EnumerateCompletions(t, s, [](const Type&) { return true; });
    benchmark::DoNotOptimize(count);
  }
  state.counters["completions"] = static_cast<double>(count);
}
BENCHMARK(BM_FullCompletionsBinary)->DenseRange(1, 2);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E1", "Type completion blow-up (Section 2): equality completions of a free type over n variables are the Bell numbers; each relation multiplies by 2^(classes^arity).")
