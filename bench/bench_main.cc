// Shared main for every benchmark binary: google-benchmark plus the
// `--report <file>` flag of the observability layer (DESIGN.md,
// docs/observability.md).
//
// Each bench .cc declares its experiment id and the paper claim it
// measures with RAV_BENCH_EXPERIMENT("E6", "..."); this main strips
// `--report` from argv before benchmark::Initialize sees it, runs the
// suite with a collecting reporter, and writes a run report with the
// stable schema of base/report.h: per-benchmark rows under
// metrics.benchmarks, the process-wide counters/histograms under
// metrics.process, and the aggregated trace spans.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/report.h"
#include "bench_common.h"

namespace rav::bench {

namespace {

// Wraps the console reporter and collects every per-iteration run row for
// the JSON report.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      Json row = Json::Object();
      row.Set("name", Json::String(run.benchmark_name()));
      row.Set("iterations", Json::Number(static_cast<int64_t>(run.iterations)));
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      row.Set("real_ns_per_iter",
              Json::Number(run.real_accumulated_time / iters * 1e9));
      row.Set("cpu_ns_per_iter",
              Json::Number(run.cpu_accumulated_time / iters * 1e9));
      if (run.error_occurred) {
        row.Set("error", Json::String(run.error_message));
      }
      Json counters = Json::Object();
      for (const auto& [name, counter] : run.counters) {
        counters.Set(name, Json::Number(static_cast<double>(counter.value)));
      }
      row.Set("counters", std::move(counters));
      rows_.Append(std::move(row));
      if (run.error_occurred) ++errors_;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  Json TakeRows() { return std::move(rows_); }
  int errors() const { return errors_; }

 private:
  Json rows_ = Json::Array();
  int errors_ = 0;
};

int Main(int argc, char** argv) {
  // Strip --report <file> / --report=<file>; everything else goes to
  // google-benchmark untouched.
  std::string report_path;
  std::vector<char*> passthrough;
  Json args = Json::Array();
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
      continue;
    }
    if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
      continue;
    }
    args.Append(Json::String(arg));
    passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());

  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }

  const ExperimentInfo info = GetExperimentInfo();
  CollectingReporter reporter;
  const auto start = std::chrono::steady_clock::now();
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  benchmark::Shutdown();

  if (!report_path.empty()) {
    RunReport report;
    report.experiment = info.id;
    report.claim = info.claim;
    report.params.Set("binary", Json::String(argv[0]));
    report.params.Set("args", std::move(args));
    Json metrics = Json::Object();
    metrics.Set("benchmarks", reporter.TakeRows());
    metrics.Set("process", CaptureProcessMetrics());
    report.metrics = std::move(metrics);
    report.spans = CaptureSpans();
    // Benchmarks assert their expectations with RAV_CHECK (a violated
    // expectation aborts before this point), so reaching the report
    // with no per-run errors means the measured shape matched.
    report.verdict = reporter.errors() == 0 ? "ok" : "error";
    report.wall_ms = wall_ms;
    Status written = WriteReportFile(report_path, report);
    if (!written.ok()) {
      std::fprintf(stderr, "--report: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

}  // namespace rav::bench

int main(int argc, char** argv) { return rav::bench::Main(argc, argv); }
