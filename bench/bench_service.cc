// E21 — Decision-service compile amortization.
// Claim: the service layer's point — compile a spec once into an
// immutable CompiledSpec (parse → lint/strip → completion → control
// alphabet) and answer every subsequent query against the shared
// artifact — buys at least 5× query throughput over recompiling per
// request, and the gap widens with the amount of strippable structure
// the compile front-loads. Both paths go through the real wire seam
// (service::ParseRequest + Service::Handle), so the measured gap is
// what a rav_serve / `rav_cli batch` client actually sees.
// Counters: dead_units, fresh_ms_per_query, cached_ms_per_query,
// amortization_ratio, compile_ms.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>

#include "base/logging.h"
#include "bench_common.h"
#include "service/compiled_spec.h"
#include "service/request.h"
#include "service/service.h"

RAV_BENCH_EXPERIMENT(
    "E21",
    "compiling a spec once and answering queries from the shared "
    "CompiledSpec yields >= 5x query throughput over "
    "compile-per-request at identical verdicts")

namespace rav {
namespace {

// The ping-pong live core plus `dead` units of strippable structure:
// each unit adds a reachable dead-end sink, an unreachable orphan
// feeder, and a vacuous constraint anchored at the orphan. Queries only
// ever touch the 2-state core; the compile pays for all of it (parse,
// analysis over every state, one constraint DFA per unit), which is
// exactly the work the CompiledSpec cache amortizes away.
std::string SpecWithDeadStructure(int dead) {
  std::string text =
      "automaton {\n"
      "  registers 1\n"
      "  state ping initial final\n"
      "  state pong\n"
      "  transition ping -> pong { x1 = y1 }\n"
      "  transition pong -> ping { }\n";
  for (int d = 0; d < dead; ++d) {
    const std::string sink = "sink" + std::to_string(d);
    const std::string orphan = "orphan" + std::to_string(d);
    text += "  state " + sink + "\n";
    text += "  state " + orphan + "\n";
    text += "  transition ping -> " + sink + " { x1 = y1 }\n";
    text += "  transition " + orphan + " -> ping { }\n";
    text += "  constraint eq 1 1 \"" + orphan + " ping\"\n";
  }
  text += "  constraint eq 1 1 \"ping pong ping\"\n";
  text += "}\n";
  return text;
}

std::string Escaped(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

// One emptiness request carrying the full spec text (the compile-or-hit
// path) — the line a cold client sends.
std::string RequestWithText(const std::string& spec) {
  return std::string("{\"id\":\"q\",\"op\":\"empty\",\"spec\":\"") +
         Escaped(spec) + "\"}";
}

// The same query by content hash (the amortized path) — the line a warm
// client sends after the service reported the hash once.
std::string RequestWithHash(const std::string& hash) {
  return std::string("{\"id\":\"q\",\"op\":\"empty\",\"spec_hash\":\"") +
         hash + "\"}";
}

service::QueryResponse Answer(service::Service& service,
                              const std::string& line) {
  auto request = service::ParseRequest(line);
  RAV_CHECK(request.ok());
  service::QueryResponse response = service.Handle(*request);
  RAV_CHECK(response.ok);
  RAV_CHECK(response.verdict == "NONEMPTY");
  return response;
}

// Compile-per-request: a fresh Service each iteration, so the text
// request never finds a cached CompiledSpec and the full pipeline runs
// inline with the query.
void BM_FreshCompilePerQuery(benchmark::State& state) {
  const int dead = static_cast<int>(state.range(0));
  const std::string line = RequestWithText(SpecWithDeadStructure(dead));
  double compile_ms = 0;
  for (auto _ : state) {
    service::Service service{service::ServiceOptions{}};
    service::QueryResponse response = Answer(service, line);
    benchmark::DoNotOptimize(response);
  }
  auto spec = service::CompiledSpec::Compile(SpecWithDeadStructure(dead));
  RAV_CHECK(spec.ok());
  compile_ms = (*spec)->compile_ms();
  state.counters["dead_units"] = dead;
  state.counters["compile_ms"] = compile_ms;
}

// Amortized: one Service compiled the spec once; every iteration is a
// hash-addressed query against the shared immutable CompiledSpec.
void BM_CachedSpecQuery(benchmark::State& state) {
  const int dead = static_cast<int>(state.range(0));
  service::Service service{service::ServiceOptions{}};
  service::QueryResponse first =
      Answer(service, RequestWithText(SpecWithDeadStructure(dead)));
  const std::string line = RequestWithHash(first.spec_hash);
  for (auto _ : state) {
    service::QueryResponse response = Answer(service, line);
    benchmark::DoNotOptimize(response);
  }
  state.counters["dead_units"] = dead;
}

// The E21 gate: times both paths back to back over the same request
// stream and RAV_CHECKs the >= 5x claim, so a regression that erodes
// the amortization fails the bench run (and CI) rather than just
// shifting a number.
void BM_AmortizationRatio(benchmark::State& state) {
  const int dead = static_cast<int>(state.range(0));
  const std::string spec = SpecWithDeadStructure(dead);
  const std::string text_line = RequestWithText(spec);
  constexpr int kQueries = 20;
  double fresh_ms = 0;
  double cached_ms = 0;
  for (auto _ : state) {
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();
    for (int i = 0; i < kQueries; ++i) {
      service::Service service{service::ServiceOptions{}};
      Answer(service, text_line);
    }
    auto t1 = Clock::now();
    service::Service warm{service::ServiceOptions{}};
    const std::string hash_line =
        RequestWithHash(Answer(warm, text_line).spec_hash);
    auto t2 = Clock::now();
    for (int i = 0; i < kQueries; ++i) Answer(warm, hash_line);
    auto t3 = Clock::now();
    fresh_ms = std::chrono::duration<double, std::milli>(t1 - t0).count() /
               kQueries;
    cached_ms = std::chrono::duration<double, std::milli>(t3 - t2).count() /
                kQueries;
  }
  const double ratio = cached_ms > 0 ? fresh_ms / cached_ms : 1e9;
  state.counters["dead_units"] = dead;
  state.counters["fresh_ms_per_query"] = fresh_ms;
  state.counters["cached_ms_per_query"] = cached_ms;
  state.counters["amortization_ratio"] = ratio;
  // The claim under measurement. Sized conservatively: with 64 dead
  // units the observed ratio is far above 5, so tripping this means the
  // cache stopped amortizing, not that the machine was slow.
  RAV_CHECK(ratio >= 5.0);
}

BENCHMARK(BM_FreshCompilePerQuery)->Arg(0)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedSpecQuery)->Arg(0)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AmortizationRatio)->Arg(64)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rav
