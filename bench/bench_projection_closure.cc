// E4 — Projections need extended automata (Examples 4 and 5, Theorem 13).
// Claim: Π₁ of Example 1 is not expressible by a register automaton; the
// Proposition 20 construction produces an extended automaton for it, and
// its trace set matches the brute-force projection on a finite pool.
// Counters: constraints, truth_traces, projected_traces, match (1 = sets
// equal).

#include <benchmark/benchmark.h>

#include <set>

#include "bench_common.h"
#include "era/run_check.h"
#include "projection/project_ra.h"
#include "ra/simulate.h"
#include "ra/transform.h"

namespace rav {
namespace {

std::set<std::vector<DataValue>> EraTraces(const ExtendedAutomaton& era,
                                           size_t keep_len,
                                           const std::vector<DataValue>& pool,
                                           int m) {
  std::set<std::vector<DataValue>> out;
  Database db{era.automaton().schema()};
  EnumerateRuns(era.automaton(), db, keep_len + 1, pool,
                [&](const FiniteRun& run) {
                  if (!CheckFiniteRunConstraints(era, run).ok()) return true;
                  std::vector<DataValue> flat;
                  for (size_t n = 0; n < keep_len; ++n) {
                    flat.insert(flat.end(), run.values[n].begin(),
                                run.values[n].begin() + m);
                  }
                  out.insert(std::move(flat));
                  return true;
                });
  return out;
}

void BM_ProjectionEquivalence(benchmark::State& state) {
  const size_t keep_len = static_cast<size_t>(state.range(0));
  RegisterAutomaton a = bench::MakeExample1();
  Prop20Stats stats;
  auto projected = ProjectRegisterAutomaton(a, 1, &stats);
  RAV_CHECK(projected.ok());
  ExtendedAutomaton plain{PruneFrontierIncompatibleTransitions(
      MakeStateDriven(Completed(a).value()))};
  std::vector<DataValue> pool = {0, 1};
  std::vector<DataValue> pool_big = {0, 1, 10, 11, 12, 13, 14};

  size_t truth_size = 0, proj_size = 0;
  bool match = false;
  for (auto _ : state) {
    std::set<std::vector<DataValue>> truth;
    for (auto& trace : EraTraces(plain, keep_len, pool_big, 1)) {
      bool in_pool = true;
      for (DataValue v : trace) in_pool = in_pool && (v == 0 || v == 1);
      if (in_pool) truth.insert(trace);
    }
    auto via = EraTraces(*projected, keep_len, pool, 1);
    truth_size = truth.size();
    proj_size = via.size();
    match = truth == via;
    benchmark::DoNotOptimize(match);
  }
  state.counters["constraints"] = stats.num_constraints;
  state.counters["truth_traces"] = static_cast<double>(truth_size);
  state.counters["projected_traces"] = static_cast<double>(proj_size);
  state.counters["match"] = match ? 1 : 0;
}
BENCHMARK(BM_ProjectionEquivalence)->DenseRange(2, 4);

void BM_Prop20Construction(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  RegisterAutomaton a = bench::MakeShiftRing(k, 3);
  Prop20Stats stats;
  for (auto _ : state) {
    auto projected = ProjectRegisterAutomaton(a, 1, &stats);
    benchmark::DoNotOptimize(projected);
  }
  state.counters["completed_transitions"] = stats.completed_transitions;
  state.counters["constraints"] = stats.num_constraints;
  state.counters["max_dfa_states"] = stats.max_constraint_dfa_states;
}
BENCHMARK(BM_Prop20Construction)->DenseRange(1, 3);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E4", "Example 4 / Proposition 20: projections of register automata need extended automata; the synthesized constraints reproduce the brute-force projected trace sets.")
