// E18 — Static analysis: lint cost and analyze-and-strip speedup.
// Claim: the analysis/ passes are cheap relative to the decision
// procedures they guard (lint is microseconds even with dead structure),
// and AnalyzeAndStrip pays for itself: on specs carrying dead states,
// dead transitions, and vacuous constraints, emptiness with stripping
// (the default) beats the unstripped search by removing control symbols
// and constraint sweeps the search would otherwise pay for on every
// closure, at an identical bounded verdict.
// Counters: diagnostics, states_removed, transitions_removed,
// constraints_removed, nonempty, lassos_tried.
//
// The BM_FlowStripClean / BM_EmptinessFlowStrip families below are the
// E24 rungs (flow-sensitive tier, analysis/dataflow.h): on clean specs
// the kFlow fixpoint stays microseconds — a single-digit multiple of
// the structural kFast floor and cheaper than the kFull local guard
// passes it out-prunes — and on specs whose dead structure only the
// flow passes can see, the kFlow strip removes what the unstripped
// search would otherwise explore, with the gap widening in the amount
// of dead structure.

#include <benchmark/benchmark.h>

#include <string>

#include "analysis/lint.h"
#include "bench_common.h"
#include "era/emptiness.h"
#include "types/completion.h"

RAV_BENCH_EXPERIMENT(
    "E18",
    "lint passes cost microseconds and AnalyzeAndStrip speeds up "
    "emptiness on specs with dead structure at an identical verdict")

namespace rav {
namespace {

// Example 5's completed core plus `dead` units of removable structure:
// each unit is a reachable dead-end state, an unreachable feeder state
// (both with guards reused from the complete core, so the automaton
// stays complete), and a vacuous constraint anchored at the feeder.
ExtendedAutomaton SeededEra(int dead) {
  ExtendedAutomaton core = bench::CompletedEra(bench::MakeExample5());
  RegisterAutomaton a = core.automaton();
  const RaTransition seed = a.transition(0);
  for (int d = 0; d < dead; ++d) {
    StateId sink = a.AddState("sink" + std::to_string(d));
    StateId orphan = a.AddState("orphan" + std::to_string(d));
    a.AddTransition(seed.from, seed.guard, sink);
    a.AddTransition(orphan, seed.guard, seed.from);
  }
  ExtendedAutomaton era(std::move(a));
  // The core constraints must be recompiled from their regex text: their
  // DFAs were built over the smaller state alphabet.
  for (const GlobalConstraint& c : core.constraints()) {
    RAV_CHECK(
        era.AddConstraintFromText(RegisterPair{c.i, c.j}, c.is_equality,
                                  c.description)
            .ok());
  }
  for (int d = 0; d < dead; ++d) {
    const std::string orphan = "orphan" + std::to_string(d);
    RAV_CHECK(era.AddConstraintFromText(
        RegisterPair{RegisterId(0), RegisterId(0)}, /*is_equality=*/true, 
                                        orphan + " " + orphan)
                  .ok());
  }
  return era;
}

void BM_Lint(benchmark::State& state) {
  ExtendedAutomaton era = SeededEra(static_cast<int>(state.range(0)));
  size_t diagnostics = 0;
  for (auto _ : state) {
    auto result = analysis::Lint(era);
    diagnostics = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["diagnostics"] = static_cast<double>(diagnostics);
}
BENCHMARK(BM_Lint)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_AnalyzeAndStrip(benchmark::State& state) {
  ExtendedAutomaton era = SeededEra(static_cast<int>(state.range(0)));
  analysis::StripResult last;
  for (auto _ : state) {
    auto result = analysis::AnalyzeAndStrip(era);
    benchmark::DoNotOptimize(result);
    last = std::move(result);
  }
  state.counters["states_removed"] = static_cast<double>(last.states_removed);
  state.counters["transitions_removed"] =
      static_cast<double>(last.transitions_removed);
  state.counters["constraints_removed"] =
      static_cast<double>(last.constraints_removed);
}
BENCHMARK(BM_AnalyzeAndStrip)->Arg(4)->Arg(16)->Arg(64);

// Emptiness with and without stripping, same bounds: the gap is what the
// dead structure costs the search. `pump` is pinned so both sides use
// identical closure windows (the procedures pin it the same way
// internally; see era/emptiness.cc).
void EmptinessWithStrip(benchmark::State& state, bool strip) {
  ExtendedAutomaton era = SeededEra(static_cast<int>(state.range(0)));
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.analyze_and_strip = strip;
  options.max_lasso_length = 6;
  options.pump = SuggestedPumpCount(era);
  EraEmptinessResult last;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(era, alphabet, options);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nonempty"] = last.nonempty;
  state.counters["lassos_tried"] = static_cast<double>(last.lassos_tried);
}

void BM_EmptinessStripOn(benchmark::State& state) {
  EmptinessWithStrip(state, true);
}
BENCHMARK(BM_EmptinessStripOn)->Arg(4)->Arg(16)->Arg(64);

void BM_EmptinessStripOff(benchmark::State& state) {
  EmptinessWithStrip(state, false);
}
BENCHMARK(BM_EmptinessStripOff)->Arg(4)->Arg(16)->Arg(64);

// ---- E24: the flow-sensitive tier (analysis/dataflow.h) ----------------

// The emptiness engines demand complete guards, so each partial guard
// goes in as the set of its complete extensions.
void AddCompletedTransitions(RegisterAutomaton& a, StateId from,
                             const Type& partial, StateId to) {
  for (const Type& guard : EqualityCompletions(partial)) {
    a.AddTransition(from, guard, to);
  }
}

// A clean accepting ring of n live states over one register and a
// constant; every transition carries all completions of the free guard,
// so every frontier is compatible and every state sits on the accepting
// cycle. The flow passes run their full fixpoint and prove nothing is
// removable — this family measures their pure analysis cost.
ExtendedAutomaton CleanRingEra(int n) {
  Schema schema;
  schema.AddConstant("c");
  RegisterAutomaton a(1, schema);
  for (int s = 0; s < n; ++s) a.AddState("r" + std::to_string(s));
  a.SetInitial(StateId(0));
  a.SetFinal(StateId(0));
  for (int s = 0; s < n; ++s) {
    Type free = a.NewGuardBuilder().Build().value();
    AddCompletedTransitions(a, StateId(s), free, StateId((s + 1) % n));
  }
  return ExtendedAutomaton(std::move(a));
}

// The clean one-state core plus `knots` copies of the self-justifying
// dead cluster of tests/data/flow_dead.rav: a feeder pinning r1 = c into
// a knot whose loop and exit both demand x1 != c. Each cluster is
// locally clean — the loop's frontier justifies itself and the exit, so
// RAV003 keeps everything — and removed whole by the flow tier.
ExtendedAutomaton FlowDeadEra(int knots) {
  Schema schema;
  const ConstantId c = schema.AddConstant("c");
  RegisterAutomaton a(1, schema);
  const StateId core = a.AddState("core");
  a.SetInitial(core);
  a.SetFinal(core);
  Type free = a.NewGuardBuilder().Build().value();
  AddCompletedTransitions(a, core, free, core);
  for (int d = 0; d < knots; ++d) {
    const StateId knot = a.AddState("knot" + std::to_string(d));
    TypeBuilder feeder = a.NewGuardBuilder();
    feeder.AddEq(feeder.Y(0), feeder.Const(c));
    AddCompletedTransitions(a, core, feeder.Build().value(), knot);
    TypeBuilder loop = a.NewGuardBuilder();
    loop.AddNeq(loop.X(0), loop.Const(c)).AddNeq(loop.Y(0), loop.Const(c));
    AddCompletedTransitions(a, knot, loop.Build().value(), knot);
    TypeBuilder leave = a.NewGuardBuilder();
    leave.AddNeq(leave.X(0), leave.Const(c));
    AddCompletedTransitions(a, knot, leave.Build().value(), core);
  }
  return ExtendedAutomaton(std::move(a));
}

// Strip cost on a clean spec at a given tier. The kFlow/kFast gap is the
// price of the dataflow fixpoint (guard compilation included); the
// kFull/kFlow gap is what skipping the quadratic local guard passes
// saves.
void FlowStripClean(benchmark::State& state, analysis::StripEffort effort) {
  ExtendedAutomaton era = CleanRingEra(static_cast<int>(state.range(0)));
  analysis::StripResult last;
  for (auto _ : state) {
    auto result = analysis::AnalyzeAndStrip(era, effort);
    benchmark::DoNotOptimize(result);
    last = std::move(result);
  }
  state.counters["states_removed"] = static_cast<double>(last.states_removed);
  state.counters["transitions_removed"] =
      static_cast<double>(last.transitions_removed);
}

void BM_FlowStripCleanFast(benchmark::State& state) {
  FlowStripClean(state, analysis::StripEffort::kFast);
}
BENCHMARK(BM_FlowStripCleanFast)->Arg(8)->Arg(32)->Arg(128);

void BM_FlowStripCleanFlow(benchmark::State& state) {
  FlowStripClean(state, analysis::StripEffort::kFlow);
}
BENCHMARK(BM_FlowStripCleanFlow)->Arg(8)->Arg(32)->Arg(128);

void BM_FlowStripCleanFull(benchmark::State& state) {
  FlowStripClean(state, analysis::StripEffort::kFull);
}
BENCHMARK(BM_FlowStripCleanFull)->Arg(8)->Arg(32)->Arg(128);

// Emptiness on the flow-dead-heavy rungs: with the strip (the decision
// procedures' kFlow default) the search sees only the one-state core;
// without it, every knot's control symbols survive into the search.
// RAV012/013 are invisible to kFast, so the gap here is purely the flow
// passes' doing — the structure is locally clean.
void EmptinessFlowStrip(benchmark::State& state, bool strip) {
  ExtendedAutomaton era = FlowDeadEra(static_cast<int>(state.range(0)));
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.analyze_and_strip = strip;
  // Force the kFlow tier at every rung: the small rungs chart the loss
  // region the default transition floor exists to avoid.
  options.min_flow_strip_transitions = 0;
  options.max_lasso_length = 6;
  options.pump = SuggestedPumpCount(era);
  EraEmptinessResult last;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(era, alphabet, options);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nonempty"] = last.nonempty;
  state.counters["lassos_tried"] = static_cast<double>(last.lassos_tried);
}

void BM_EmptinessFlowStripOn(benchmark::State& state) {
  EmptinessFlowStrip(state, true);
}
BENCHMARK(BM_EmptinessFlowStripOn)->Arg(4)->Arg(16)->Arg(64);

void BM_EmptinessFlowStripOff(benchmark::State& state) {
  EmptinessFlowStrip(state, false);
}
BENCHMARK(BM_EmptinessFlowStripOff)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace rav
