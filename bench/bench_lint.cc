// E18 — Static analysis: lint cost and analyze-and-strip speedup.
// Claim: the analysis/ passes are cheap relative to the decision
// procedures they guard (lint is microseconds even with dead structure),
// and AnalyzeAndStrip pays for itself: on specs carrying dead states,
// dead transitions, and vacuous constraints, emptiness with stripping
// (the default) beats the unstripped search by removing control symbols
// and constraint sweeps the search would otherwise pay for on every
// closure, at an identical bounded verdict.
// Counters: diagnostics, states_removed, transitions_removed,
// constraints_removed, nonempty, lassos_tried.

#include <benchmark/benchmark.h>

#include <string>

#include "analysis/lint.h"
#include "bench_common.h"
#include "era/emptiness.h"

RAV_BENCH_EXPERIMENT(
    "E18",
    "lint passes cost microseconds and AnalyzeAndStrip speeds up "
    "emptiness on specs with dead structure at an identical verdict")

namespace rav {
namespace {

// Example 5's completed core plus `dead` units of removable structure:
// each unit is a reachable dead-end state, an unreachable feeder state
// (both with guards reused from the complete core, so the automaton
// stays complete), and a vacuous constraint anchored at the feeder.
ExtendedAutomaton SeededEra(int dead) {
  ExtendedAutomaton core = bench::CompletedEra(bench::MakeExample5());
  RegisterAutomaton a = core.automaton();
  const RaTransition seed = a.transition(0);
  for (int d = 0; d < dead; ++d) {
    StateId sink = a.AddState("sink" + std::to_string(d));
    StateId orphan = a.AddState("orphan" + std::to_string(d));
    a.AddTransition(seed.from, seed.guard, sink);
    a.AddTransition(orphan, seed.guard, seed.from);
  }
  ExtendedAutomaton era(std::move(a));
  // The core constraints must be recompiled from their regex text: their
  // DFAs were built over the smaller state alphabet.
  for (const GlobalConstraint& c : core.constraints()) {
    RAV_CHECK(
        era.AddConstraintFromText(c.i, c.j, c.is_equality, c.description)
            .ok());
  }
  for (int d = 0; d < dead; ++d) {
    const std::string orphan = "orphan" + std::to_string(d);
    RAV_CHECK(era.AddConstraintFromText(0, 0, /*is_equality=*/true,
                                        orphan + " " + orphan)
                  .ok());
  }
  return era;
}

void BM_Lint(benchmark::State& state) {
  ExtendedAutomaton era = SeededEra(static_cast<int>(state.range(0)));
  size_t diagnostics = 0;
  for (auto _ : state) {
    auto result = analysis::Lint(era);
    diagnostics = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["diagnostics"] = static_cast<double>(diagnostics);
}
BENCHMARK(BM_Lint)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_AnalyzeAndStrip(benchmark::State& state) {
  ExtendedAutomaton era = SeededEra(static_cast<int>(state.range(0)));
  analysis::StripResult last;
  for (auto _ : state) {
    auto result = analysis::AnalyzeAndStrip(era);
    benchmark::DoNotOptimize(result);
    last = std::move(result);
  }
  state.counters["states_removed"] = static_cast<double>(last.states_removed);
  state.counters["transitions_removed"] =
      static_cast<double>(last.transitions_removed);
  state.counters["constraints_removed"] =
      static_cast<double>(last.constraints_removed);
}
BENCHMARK(BM_AnalyzeAndStrip)->Arg(4)->Arg(16)->Arg(64);

// Emptiness with and without stripping, same bounds: the gap is what the
// dead structure costs the search. `pump` is pinned so both sides use
// identical closure windows (the procedures pin it the same way
// internally; see era/emptiness.cc).
void EmptinessWithStrip(benchmark::State& state, bool strip) {
  ExtendedAutomaton era = SeededEra(static_cast<int>(state.range(0)));
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.analyze_and_strip = strip;
  options.max_lasso_length = 6;
  options.pump = SuggestedPumpCount(era);
  EraEmptinessResult last;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(era, alphabet, options);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nonempty"] = last.nonempty;
  state.counters["lassos_tried"] = static_cast<double>(last.lassos_tried);
}

void BM_EmptinessStripOn(benchmark::State& state) {
  EmptinessWithStrip(state, true);
}
BENCHMARK(BM_EmptinessStripOn)->Arg(4)->Arg(16)->Arg(64);

void BM_EmptinessStripOff(benchmark::State& state) {
  EmptinessWithStrip(state, false);
}
BENCHMARK(BM_EmptinessStripOff)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace rav
