// E14 — Simulator throughput (substrate sanity baseline).
// Counters: positions/s for randomized run generation and the region
// abstraction size of the fixed-database emptiness decision.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.h"
#include "ra/emptiness.h"
#include "ra/simulate.h"

namespace rav {
namespace {

void BM_SampleRunThroughput(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  RegisterAutomaton a = bench::MakeShiftRing(k, 4);
  Database db{Schema()};
  std::mt19937 rng(1234);
  size_t positions = 0;
  for (auto _ : state) {
    auto run = SampleRun(a, db, 64, rng);
    if (run.has_value()) positions += run->length();
    benchmark::DoNotOptimize(run);
  }
  state.counters["k"] = k;
  state.counters["positions_per_s"] = benchmark::Counter(
      static_cast<double>(positions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SampleRunThroughput)->DenseRange(1, 4);

void BM_FixedDbEmptiness(benchmark::State& state) {
  // Region-abstraction size vs. database size.
  const int adom = static_cast<int>(state.range(0));
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(2, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.Y(0)}, true);
  a.AddTransition(q, b.Build().value(), q);
  Database db(s);
  for (int v = 0; v < adom; ++v) db.Insert(p, {v});

  bool has_run = false;
  FixedDbStats stats;
  for (auto _ : state) {
    has_run = HasRunOverDatabase(a, db, &stats);
    benchmark::DoNotOptimize(has_run);
  }
  state.counters["adom"] = adom;
  state.counters["has_run"] = has_run;
  state.counters["configurations"] =
      static_cast<double>(stats.num_configurations);
  state.counters["edges"] = static_cast<double>(stats.num_edges);
}
BENCHMARK(BM_FixedDbEmptiness)->DenseRange(1, 7, 2);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E14", "Substrate throughput sanity baseline: randomized run generation and the fixed-database region abstraction match their analytical sizes.")
