// E7 — Witness synthesis (Theorem 9, constructive content).
// Claim: a consistent symbolic lasso realizes into a finite database plus
// a concrete run; with inequality constraints the values split into
// classes whose inequality graph is colored (χ-boundedness step).
// Counters: window, db_facts, classes, adom_classes, colors, clique.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "era/emptiness.h"
#include "ra/transform.h"

namespace rav {
namespace {

void BM_RealizeWitness(benchmark::State& state) {
  const size_t length = static_cast<size_t>(state.range(0));
  ExtendedAutomaton era = bench::CompletedEra(bench::MakeExample5());
  ControlAlphabet alphabet(era.automaton());
  auto lasso_result = CheckEraEmptiness(era, alphabet);
  RAV_CHECK(lasso_result.ok() && lasso_result->nonempty);
  LassoWord lasso = lasso_result->control_word;
  size_t facts = 0;
  for (auto _ : state) {
    auto witness = RealizeEraWitness(era, alphabet, lasso, length);
    RAV_CHECK(witness.ok());
    facts = witness->db.NumFacts();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["window"] = static_cast<double>(length);
  state.counters["db_facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_RealizeWitness)->RangeMultiplier(2)->Range(8, 64);

void BM_ClosureAndColoring(benchmark::State& state) {
  // The all-distinct automaton: closure classes grow linearly with the
  // window; the coloring of the (non-adom) inequality graph... for the
  // adom variant (Example 8 skeleton) clique and colors grow with the
  // window — exactly the quantity Theorem 9 bounds by the database size.
  const size_t window = static_cast<size_t>(state.range(0));
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.X(0)}, true).AddAtom(p, {b.Y(0)}, true);
  a.AddTransition(q, b.Build().value(), q);
  ExtendedAutomaton era(MakeStateDriven(a));
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, ". .+").ok());
  ControlAlphabet alphabet(era.automaton());
  LassoWord lasso{{}, {0}};
  int classes = 0, adom = 0, colors = 0, clique = 0;
  for (auto _ : state) {
    ConstraintClosure closure(era, alphabet, lasso, window);
    classes = closure.num_classes();
    adom = closure.NumAdomClasses();
    closure.GreedyAdomColoring(&colors);
    clique = closure.AdomCliqueNumber(256);
    benchmark::DoNotOptimize(closure);
  }
  state.counters["window"] = static_cast<double>(window);
  state.counters["classes"] = classes;
  state.counters["adom_classes"] = adom;
  state.counters["colors"] = colors;
  state.counters["clique"] = clique;
}
BENCHMARK(BM_ClosureAndColoring)->RangeMultiplier(2)->Range(4, 32);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E7", "Theorem 9 witness synthesis: a finite database plus run is constructed from every consistent symbolic trace; unbounded-clique growth signals non-realizability.")
