// E6 — Extended-automaton emptiness (Theorem 9 / Corollary 10).
// Claim: emptiness over finite databases is decidable; the lasso search
// with constraint-closure checking decides the paper's examples.
// Counters: nonempty, lassos_tried, search length bound.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "era/emptiness.h"
#include "ra/transform.h"

namespace rav {
namespace {

void BM_EmptinessExample5(benchmark::State& state) {
  ExtendedAutomaton era = bench::CompletedEra(bench::MakeExample5());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = static_cast<size_t>(state.range(0));
  bool nonempty = false;
  size_t tried = 0;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(era, alphabet, options);
    RAV_CHECK(result.ok());
    nonempty = result->nonempty;
    tried = result->lassos_tried;
    benchmark::DoNotOptimize(result);
  }
  state.counters["max_lasso_length"] =
      static_cast<double>(options.max_lasso_length);
  state.counters["nonempty"] = nonempty;
  state.counters["lassos_tried"] = static_cast<double>(tried);
}
BENCHMARK(BM_EmptinessExample5)->DenseRange(4, 10, 2);

void BM_EmptinessContradictory(benchmark::State& state) {
  // Equality + inequality on the same factor: every lasso inconsistent.
  ExtendedAutomaton era = bench::MakeExample5();
  RAV_CHECK(era.AddConstraintFromText(0, 0, false, "p1 p2* p1").ok());
  ExtendedAutomaton complete = bench::CompletedEra(era);
  ControlAlphabet alphabet(complete.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = static_cast<size_t>(state.range(0));
  options.max_lassos = 2000;
  bool nonempty = true;
  size_t tried = 0;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(complete, alphabet, options);
    RAV_CHECK(result.ok());
    nonempty = result->nonempty;
    tried = result->lassos_tried;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nonempty"] = nonempty;
  state.counters["lassos_tried"] = static_cast<double>(tried);
}
BENCHMARK(BM_EmptinessContradictory)->DenseRange(4, 8, 2);

void BM_EmptinessExample8(benchmark::State& state) {
  // Example 8: all-distinct values that must stay in a unary relation —
  // nonempty over infinite databases but EMPTY over finite ones; the
  // clique-growth guard must reject every lasso.
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.X(0)}, true).AddAtom(p, {b.Y(0)}, true);
  a.AddTransition(q, b.Build().value(), q);
  RegisterAutomaton completed = Completed(a).value();
  ExtendedAutomaton era(std::move(completed));
  RAV_CHECK(era.AddConstraintFromText(0, 0, false, "q q+").ok());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = 6;
  options.max_lassos = 500;
  bool nonempty = true;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(era, alphabet, options);
    RAV_CHECK(result.ok());
    nonempty = result->nonempty;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nonempty"] = nonempty;  // expected 0
}
BENCHMARK(BM_EmptinessExample8);

}  // namespace
}  // namespace rav
