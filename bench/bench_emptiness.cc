// E6 — Extended-automaton emptiness (Theorem 9 / Corollary 10).
// Claim: emptiness over finite databases is decidable; the lasso search
// with constraint-closure checking decides the paper's examples, and the
// closure checks parallelize across worker threads with verdicts and
// witnesses identical to the serial search.
// Counters: nonempty, lassos_tried, stop_reason (SearchStopReason enum
// value: 0 witness-found, 1 exhausted, 2 length-bound, 3 lasso-budget,
// 4 step-budget), closures, workers.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "era/emptiness.h"
#include "ra/transform.h"

namespace rav {
namespace {

void AddSearchCounters(benchmark::State& state, const SearchStats& stats) {
  state.counters["stop_reason"] = static_cast<double>(stats.stop_reason);
  state.counters["enumerated"] = static_cast<double>(stats.lassos_enumerated);
  state.counters["closures"] = static_cast<double>(stats.closures_built);
  state.counters["extended"] = static_cast<double>(stats.closures_extended);
  state.counters["inconsistent"] =
      static_cast<double>(stats.inconsistent_closures);
  state.counters["workers"] = static_cast<double>(stats.workers);
}

void BM_EmptinessExample5(benchmark::State& state) {
  ExtendedAutomaton era = bench::CompletedEra(bench::MakeExample5());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = static_cast<size_t>(state.range(0));
  EraEmptinessResult last;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(era, alphabet, options);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["max_lasso_length"] =
      static_cast<double>(options.max_lasso_length);
  state.counters["nonempty"] = last.nonempty;
  state.counters["lassos_tried"] = static_cast<double>(last.lassos_tried);
  AddSearchCounters(state, last.stats);
}
BENCHMARK(BM_EmptinessExample5)->DenseRange(4, 10, 2);

void BM_EmptinessContradictory(benchmark::State& state) {
  // Equality + inequality on the same factor: every lasso inconsistent.
  ExtendedAutomaton era = bench::MakeExample5();
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "p1 p2* p1").ok());
  ExtendedAutomaton complete = bench::CompletedEra(era);
  ControlAlphabet alphabet(complete.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = static_cast<size_t>(state.range(0));
  options.max_lassos = 2000;
  EraEmptinessResult last;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(complete, alphabet, options);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nonempty"] = last.nonempty;
  state.counters["lassos_tried"] = static_cast<double>(last.lassos_tried);
  AddSearchCounters(state, last.stats);
}
BENCHMARK(BM_EmptinessContradictory)->DenseRange(4, 8, 2);

void BM_EmptinessExample8(benchmark::State& state) {
  // Example 8: all-distinct values that must stay in a unary relation —
  // nonempty over infinite databases but EMPTY over finite ones; the
  // clique-growth guard must reject every lasso.
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.X(0)}, true).AddAtom(p, {b.Y(0)}, true);
  a.AddTransition(q, b.Build().value(), q);
  RegisterAutomaton completed = Completed(a).value();
  ExtendedAutomaton era(std::move(completed));
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, "q q+").ok());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions options;
  options.max_lasso_length = 6;
  options.max_lassos = 500;
  EraEmptinessResult last;
  for (auto _ : state) {
    auto result = CheckEraEmptiness(era, alphabet, options);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nonempty"] = last.nonempty;  // expected 0
  AddSearchCounters(state, last.stats);
}
BENCHMARK(BM_EmptinessExample8);

void BM_EmptinessShiftRingParallel(benchmark::State& state) {
  // The parallel-engine workload: a 4-register shift ring with skip
  // transitions (exponential lasso space) under contradictory global
  // constraints, so every candidate builds a full closure and is
  // rejected. Arg = worker count; verdicts and witnesses are checked
  // byte-identical to the serial reference on every run.
  const int workers = static_cast<int>(state.range(0));
  ExtendedAutomaton era = bench::MakeShiftRingSearchEra(4, 6, true);
  ControlAlphabet alphabet(era.automaton());
  Nba scontrol = BuildSControlNba(era.automaton(), alphabet);
  EraEmptinessOptions options;
  options.max_lasso_length = 12;
  options.max_lassos = 256;
  options.num_workers = workers;
  EraEmptinessOptions serial = options;
  serial.num_workers = 1;
  EraEmptinessResult reference =
      SearchConsistentLasso(era, alphabet, scontrol, serial);
  EraEmptinessResult last;
  for (auto _ : state) {
    last = SearchConsistentLasso(era, alphabet, scontrol, options);
    benchmark::DoNotOptimize(last);
  }
  RAV_CHECK(last.nonempty == reference.nonempty);
  RAV_CHECK(last.control_word.prefix == reference.control_word.prefix);
  RAV_CHECK(last.control_word.cycle == reference.control_word.cycle);
  RAV_CHECK(last.stats.stop_reason == reference.stats.stop_reason);
  state.counters["nonempty"] = last.nonempty;  // expected 0
  state.counters["lassos_tried"] = static_cast<double>(last.lassos_tried);
  AddSearchCounters(state, last.stats);
}
BENCHMARK(BM_EmptinessShiftRingParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EmptinessShiftRingWitnessParallel(benchmark::State& state) {
  // Same family without the contradiction: the ERA is nonempty, and the
  // engine must return the serial search's first witness (lowest
  // enumeration rank) at every worker count.
  const int workers = static_cast<int>(state.range(0));
  ExtendedAutomaton era = bench::MakeShiftRingSearchEra(4, 6, false);
  ControlAlphabet alphabet(era.automaton());
  Nba scontrol = BuildSControlNba(era.automaton(), alphabet);
  EraEmptinessOptions options;
  options.max_lasso_length = 12;
  options.max_lassos = 256;
  options.num_workers = workers;
  EraEmptinessOptions serial = options;
  serial.num_workers = 1;
  EraEmptinessResult reference =
      SearchConsistentLasso(era, alphabet, scontrol, serial);
  RAV_CHECK(reference.nonempty);
  EraEmptinessResult last;
  for (auto _ : state) {
    last = SearchConsistentLasso(era, alphabet, scontrol, options);
    benchmark::DoNotOptimize(last);
  }
  RAV_CHECK(last.nonempty);
  RAV_CHECK(last.control_word.prefix == reference.control_word.prefix);
  RAV_CHECK(last.control_word.cycle == reference.control_word.cycle);
  state.counters["nonempty"] = last.nonempty;  // expected 1
  AddSearchCounters(state, last.stats);
}
BENCHMARK(BM_EmptinessShiftRingWitnessParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E6", "Theorem 9 / Corollary 10: emptiness of extended automata over finite databases is decidable; the closure checks parallelize with verdicts identical to the serial search.")
