// E17 — Constraint-closure engines (linear sweep vs reference restarts).
// Claim: resolving the global constraints with one forward sweep over
// grouped DFA runs is O(window · |Q_dfa|) per constraint instead of the
// per-start-restart O(window²), so closure construction speeds up
// super-linearly in the window; growing a closure with ExtendedBy costs
// one cycle of sweep instead of a full rebuild. Both engines are checked
// for identical classes/edges/consistency on every configuration.
// Counters: window, constraints, classes, ineq_edges.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "era/constraint_graph.h"
#include "ra/control.h"

namespace rav {
namespace {

// A 2-register, 2-state ERA with `num_constraints` anchored gap-style
// global constraints in the shape of the paper's Example 5: constraint c
// relates register 0 at a q0-position n to register 1 at position
// n + gap_c (regex "q0 q1 ... q1"). Anchoring matches real constraints
// ("whenever the run visits q0, ...") and separates the engines: the
// reference engine restarts the DFA at every start position and steps it
// to the end of the window even after it dies, while the linear engine
// drops non-q0 starts immediately (coreachability early-exit) and keeps
// only the handful of live runs.
ExtendedAutomaton MakeAnchoredConstraintEra(int num_constraints) {
  RegisterAutomaton a(2, Schema());
  StateId q0 = a.AddState("q0");
  StateId q1 = a.AddState("q1");
  a.SetInitial(q0);
  a.SetFinal(q0);
  a.AddTransition(q0, a.NewGuardBuilder().Build().value(), q1);
  a.AddTransition(q1, a.NewGuardBuilder().Build().value(), q1);
  a.AddTransition(q1, a.NewGuardBuilder().Build().value(), q0);
  ExtendedAutomaton era(std::move(a));
  for (int c = 0; c < num_constraints; ++c) {
    const int gap = 2 + (c % 3);
    std::string expr = "q0";
    for (int i = 0; i < gap; ++i) expr += " q1";
    RAV_CHECK(
        era.AddConstraintFromText(
            RegisterPair{RegisterId(0), RegisterId(1)},
            /*is_equality=*/c % 2 == 0, expr)
            .ok());
  }
  return era;
}

// q0 q1 q1 q1 repeated: every fourth position anchors new constraint runs.
LassoWord AnchoredWord(const RegisterAutomaton& a,
                       const ControlAlphabet& alphabet) {
  int sym_q0 = -1;
  int sym_q1 = -1;
  for (int s = 0; s < alphabet.size(); ++s) {
    const std::string& name = a.state_name(alphabet.state_of(SymbolId(s)));
    if (name == "q0" && sym_q0 < 0) sym_q0 = s;
    if (name == "q1" && sym_q1 < 0) sym_q1 = s;
  }
  RAV_CHECK_GE(sym_q0, 0);
  RAV_CHECK_GE(sym_q1, 0);
  LassoWord word;
  word.cycle = {sym_q0, sym_q1, sym_q1, sym_q1};
  return word;
}

void CheckEnginesAgree(const ExtendedAutomaton& era,
                       const ControlAlphabet& alphabet, const LassoWord& word,
                       size_t window) {
  ConstraintClosure fast(era, alphabet, word, window, nullptr,
                         ClosureEngine::kLinear);
  ConstraintClosure slow =
      ReferenceConstraintClosure(era, alphabet, word, window);
  RAV_CHECK(fast.consistent() == slow.consistent());
  RAV_CHECK_EQ(fast.num_classes(), slow.num_classes());
  for (int v = 0; v < fast.num_nodes(); ++v) {
    RAV_CHECK_EQ(fast.ClassOf(v), slow.ClassOf(v));
  }
  RAV_CHECK(fast.InequalityEdges() == slow.InequalityEdges());
}

void RunClosureBench(benchmark::State& state, ClosureEngine engine) {
  const size_t window = static_cast<size_t>(state.range(0));
  const int num_constraints = static_cast<int>(state.range(1));
  ExtendedAutomaton era = MakeAnchoredConstraintEra(num_constraints);
  ControlAlphabet alphabet(era.automaton());
  LassoWord word = AnchoredWord(era.automaton(), alphabet);
  CheckEnginesAgree(era, alphabet, word, window);
  ClosureScratch scratch;
  int classes = 0;
  size_t edges = 0;
  for (auto _ : state) {
    ConstraintClosure closure(era, alphabet, word, window, &scratch, engine);
    classes = closure.num_classes();
    edges = closure.InequalityEdges().size();
    benchmark::DoNotOptimize(closure);
  }
  state.counters["window"] = static_cast<double>(window);
  state.counters["constraints"] = static_cast<double>(num_constraints);
  state.counters["classes"] = static_cast<double>(classes);
  state.counters["ineq_edges"] = static_cast<double>(edges);
}

void BM_ClosureLinear(benchmark::State& state) {
  RunClosureBench(state, ClosureEngine::kLinear);
}
// MinTime keeps the engine-vs-engine ratios stable run to run (these two
// families feed the perf gate and the E17 speedup claims).
BENCHMARK(BM_ClosureLinear)
    ->ArgsProduct({{10, 20, 40, 80, 160}, {2, 4, 8}})
    ->MinTime(0.5);

void BM_ClosureReference(benchmark::State& state) {
  RunClosureBench(state, ClosureEngine::kReference);
}
BENCHMARK(BM_ClosureReference)
    ->ArgsProduct({{10, 20, 40, 80, 160}, {2, 4, 8}})
    ->MinTime(0.5);

// Closure reuse: the pump/realize pipelines need the same word at window
// and window + one cycle. ExtendedBy pays one position of sweep; the old
// pipeline paid a second full build.
void BM_ClosureExtendOneCycle(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  ExtendedAutomaton era = MakeAnchoredConstraintEra(4);
  ControlAlphabet alphabet(era.automaton());
  LassoWord word = AnchoredWord(era.automaton(), alphabet);
  ClosureScratch scratch;
  ConstraintClosure base(era, alphabet, word, window, &scratch,
                         ClosureEngine::kLinear);
  for (auto _ : state) {
    ConstraintClosure wider = base.ExtendedBy(1, &scratch);
    benchmark::DoNotOptimize(wider);
  }
  state.counters["window"] = static_cast<double>(window);
}
BENCHMARK(BM_ClosureExtendOneCycle)->Arg(20)->Arg(80);

void BM_ClosureRebuildOneCycle(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  ExtendedAutomaton era = MakeAnchoredConstraintEra(4);
  ControlAlphabet alphabet(era.automaton());
  LassoWord word = AnchoredWord(era.automaton(), alphabet);
  ClosureScratch scratch;
  for (auto _ : state) {
    ConstraintClosure wider(era, alphabet, word,
                            window + word.cycle.size(), &scratch);
    benchmark::DoNotOptimize(wider);
  }
  state.counters["window"] = static_cast<double>(window);
}
BENCHMARK(BM_ClosureRebuildOneCycle)->Arg(20)->Arg(80);

// The paper's Example 5 constraint ("p1 p2* p1") on its own automaton —
// a non-synthetic shape where accepts are dense along the cycle.
void BM_ClosureExample5(benchmark::State& state) {
  const size_t pump = static_cast<size_t>(state.range(0));
  ExtendedAutomaton era = bench::CompletedEra(bench::MakeExample5());
  ControlAlphabet alphabet(era.automaton());
  // The p1 -> p2 -> p1 loop of the completed automaton, as symbols.
  LassoWord word;
  for (int s = 0; s < alphabet.size() && word.cycle.size() < 2; ++s) {
    word.cycle.push_back(s);
  }
  const size_t window = word.cycle.size() * pump;
  CheckEnginesAgree(era, alphabet, word, window);
  ClosureScratch scratch;
  for (auto _ : state) {
    ConstraintClosure closure(era, alphabet, word, window, &scratch);
    benchmark::DoNotOptimize(closure);
  }
  state.counters["window"] = static_cast<double>(window);
}
BENCHMARK(BM_ClosureExample5)->Arg(8)->Arg(32);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E17", "Constraint-closure construction: the linear forward sweep over grouped constraint-DFA runs matches the reference per-start engine bit-for-bit while scaling O(window) instead of O(window²) per constraint; ExtendedBy grows a closure for one cycle of sweep instead of a rebuild.")
