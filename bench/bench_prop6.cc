// E5 — Proposition 6: equality-constraint elimination.
// Claim: each equality constraint costs one register per DFA state; the
// control state carries the on/dead bookkeeping (up to 4^{|DFA|} per
// constraint).
// Counters: registers_in/out, states_in/out, transitions_out, as the
// constraint expression p1 p2^n p1 grows.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "era/prop6.h"

namespace rav {
namespace {

// Example 5 with the constraint p1 p2^n p1 (exact gap of n p2-steps).
ExtendedAutomaton MakeGapConstraintEra(int gap) {
  RegisterAutomaton b(1, Schema());
  StateId p1 = b.AddState("p1");
  StateId p2 = b.AddState("p2");
  b.SetInitial(p1);
  b.SetFinal(p1);
  Type empty = b.NewGuardBuilder().Build().value();
  b.AddTransition(p1, empty, p2);
  b.AddTransition(p2, empty, p2);
  b.AddTransition(p2, empty, p1);
  ExtendedAutomaton era(std::move(b));
  std::string expr = "p1";
  for (int i = 0; i < gap; ++i) expr += " p2";
  expr += " p1";
  Status s = era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, true, expr);
  RAV_CHECK(s.ok());
  return era;
}

void BM_EliminateEqualityGap(benchmark::State& state) {
  const int gap = static_cast<int>(state.range(0));
  ExtendedAutomaton era = MakeGapConstraintEra(gap);
  Prop6Stats stats;
  for (auto _ : state) {
    auto b = EliminateEqualityConstraints(era, &stats);
    RAV_CHECK(b.ok());
    benchmark::DoNotOptimize(b);
  }
  state.counters["dfa_states"] = era.constraints()[0].dfa.num_states();
  state.counters["registers_in"] = stats.registers_before;
  state.counters["registers_out"] = stats.registers_after;
  state.counters["states_out"] = stats.states_after;
  state.counters["transitions_out"] = stats.transitions_after;
}
BENCHMARK(BM_EliminateEqualityGap)->DenseRange(1, 5);

void BM_EliminateExample5(benchmark::State& state) {
  ExtendedAutomaton era = bench::MakeExample5();
  Prop6Stats stats;
  for (auto _ : state) {
    auto b = EliminateEqualityConstraints(era, &stats);
    RAV_CHECK(b.ok());
    benchmark::DoNotOptimize(b);
  }
  state.counters["registers_out"] = stats.registers_after;
  state.counters["states_out"] = stats.states_after;
  state.counters["transitions_out"] = stats.transitions_after;
}
BENCHMARK(BM_EliminateExample5);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E5", "Proposition 6: equality constraints compile away with one extra register per DFA state of the constraint plus bookkeeping control state.")
