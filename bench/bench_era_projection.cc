// E10 — Theorem 13: projections of extended automata.
// Claim: extended automata are closed under projection; the composition
// automaton (equal wavefront + distinct set + constraint-run tracking)
// stays manageable for small k.
// Counters: prop6_registers, sd_states, constraints, max_dfa_states.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "projection/project_era.h"
#include "ra/transform.h"

namespace rav {
namespace {

void BM_ProjectPlainEra(benchmark::State& state) {
  // Theorem 13 applied to Example 1 (no global constraints): must match
  // the Proposition 20 pipeline.
  RegisterAutomaton a =
      MakeStateDriven(Completed(bench::MakeExample1()).value());
  ExtendedAutomaton era(a);
  Theorem13Stats stats;
  for (auto _ : state) {
    auto projected = ProjectExtendedAutomaton(era, 1, &stats);
    RAV_CHECK(projected.ok());
    benchmark::DoNotOptimize(projected);
  }
  state.counters["sd_states"] = stats.state_driven_states;
  state.counters["constraints"] = stats.num_constraints;
  state.counters["max_dfa_states"] = stats.max_constraint_dfa_states;
}
BENCHMARK(BM_ProjectPlainEra);

void BM_ProjectEraWithConstraint(benchmark::State& state) {
  // A 2-register automaton with a hidden-register inequality constraint
  // that the projection must surface on the visible register.
  const int gap = static_cast<int>(state.range(0));
  RegisterAutomaton a(2, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder g = a.NewGuardBuilder();
  g.AddEq(g.X(0), g.X(1));
  a.AddTransition(q, g.Build().value(), q);
  ExtendedAutomaton era(MakeStateDriven(a));
  std::string expr = ".";
  for (int i = 0; i < gap; ++i) expr += " .";
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(1), RegisterId(1)}, false, expr).ok());
  Theorem13Stats stats;
  for (auto _ : state) {
    auto projected = ProjectExtendedAutomaton(era, 1, &stats);
    RAV_CHECK(projected.ok());
    benchmark::DoNotOptimize(projected);
  }
  state.counters["gap"] = gap;
  state.counters["constraints"] = stats.num_constraints;
  state.counters["max_dfa_states"] = stats.max_constraint_dfa_states;
}
BENCHMARK(BM_ProjectEraWithConstraint)->DenseRange(1, 4);

void BM_ProjectEraWithEquality(benchmark::State& state) {
  // Equality constraints route through Proposition 6 first.
  ExtendedAutomaton era = bench::MakeExample5();
  // Project... Example 5 has one register; add a second free register so
  // there is something to hide.
  RegisterAutomaton two(2, Schema());
  StateId p1 = two.AddState("p1");
  StateId p2 = two.AddState("p2");
  two.SetInitial(p1);
  two.SetFinal(p1);
  Type empty = two.NewGuardBuilder().Build().value();
  two.AddTransition(p1, empty, p2);
  two.AddTransition(p2, empty, p2);
  two.AddTransition(p2, empty, p1);
  ExtendedAutomaton era2(std::move(two));
  RAV_CHECK(era2.AddConstraintFromText(
      RegisterPair{RegisterId(1), RegisterId(1)}, true, "p1 p2* p1").ok());
  Theorem13Stats stats;
  for (auto _ : state) {
    auto projected = ProjectExtendedAutomaton(era2, 1, &stats);
    RAV_CHECK(projected.ok());
    benchmark::DoNotOptimize(projected);
  }
  state.counters["prop6_registers"] = stats.prop6_registers;
  state.counters["sd_states"] = stats.state_driven_states;
  state.counters["constraints"] = stats.num_constraints;
}
BENCHMARK(BM_ProjectEraWithEquality);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E10", "Theorem 13: extended automata are closed under projection; hidden-register constraints surface on the visible registers.")
