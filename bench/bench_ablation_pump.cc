// E15 (ablation) — cycle pump factor of the constraint-closure window.
// Design choice §5.1 of DESIGN.md: decision procedures examine a pumped
// finite window of the lasso. Too small a pump misses constraint spans
// (false "consistent"); larger pumps cost O(window²) per constraint.
// This ablation sweeps the pump factor on a constraint with a long span
// and reports when the verdict stabilizes and what it costs.

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <string>

#include "era/constraint_graph.h"
#include "ra/register_automaton.h"

namespace rav {
namespace {

// One state, equality constraint on exact gap 6 and inequality constraint
// on exact gap 3: at gap lcm-ish windows the two interact (positions 0~6,
// 0≠3, 3~9, ...): consistent, but detecting the interplay requires
// windows past the spans.
ExtendedAutomaton MakeLongSpanEra(bool contradictory) {
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  ExtendedAutomaton era(std::move(a));
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, true, "q q q q q q q").ok());
  // Contradictory variant: also force inequality at gap 6.
  RAV_CHECK(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, false, 
                                      contradictory ? "q q q q q q q"
                                                    : "q q q q")
                .ok());
  return era;
}

void BM_PumpSweep(benchmark::State& state) {
  const size_t pump = static_cast<size_t>(state.range(0));
  const bool contradictory = state.range(1) != 0;
  ExtendedAutomaton era = MakeLongSpanEra(contradictory);
  ControlAlphabet alphabet(era.automaton());
  LassoWord lasso{{}, {0}};
  bool consistent = false;
  size_t window = 0;
  for (auto _ : state) {
    window = lasso.cycle.size() * pump;
    if (window == 0) window = 1;
    ConstraintClosure closure(era, alphabet, lasso, window);
    consistent = closure.consistent();
    benchmark::DoNotOptimize(closure);
  }
  state.counters["pump"] = static_cast<double>(pump);
  state.counters["window"] = static_cast<double>(window);
  state.counters["contradictory_input"] = contradictory;
  state.counters["verdict_consistent"] = consistent;
  // Expected: the contradictory variant flips to inconsistent once the
  // window covers the span (pump >= 7); the satisfiable one stays
  // consistent at every pump. SuggestedPumpCount for this automaton:
  state.counters["suggested_pump"] =
      static_cast<double>(SuggestedPumpCount(era));
}
BENCHMARK(BM_PumpSweep)
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({7, 1})
    ->Args({10, 1})
    ->Args({20, 1})
    ->Args({2, 0})
    ->Args({10, 0})
    ->Args({20, 0});

void BM_ClosureCostVsWindow(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  ExtendedAutomaton era = MakeLongSpanEra(false);
  ControlAlphabet alphabet(era.automaton());
  LassoWord lasso{{}, {0}};
  for (auto _ : state) {
    ConstraintClosure closure(era, alphabet, lasso, window);
    benchmark::DoNotOptimize(closure);
  }
  state.counters["window"] = static_cast<double>(window);
}
BENCHMARK(BM_ClosureCostVsWindow)->RangeMultiplier(2)->Range(8, 256);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E15", "Ablation (DESIGN.md 5.1): the closure window pump must cover every constraint span; too-small pumps truncate contradictions into apparent consistency.")
