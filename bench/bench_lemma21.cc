// E9 — Lemma 21: propagation automata sizes.
// Claim: the subset construction tracking the equal/distinct wavefronts
// has at most ~4^k · |Q| raw states; minimization collapses most of them.
// Counters: raw_states, max/avg minimized DFA states across the 2k² DFAs.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "projection/lemma21.h"
#include "ra/transform.h"

namespace rav {
namespace {

void BM_PropagationAutomata(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  RegisterAutomaton a =
      MakeStateDriven(Completed(bench::MakeShiftRing(k, s)).value());
  int raw = 0, max_dfa = 0;
  double avg_dfa = 0;
  for (auto _ : state) {
    auto propagation = PropagationAutomata::Build(a);
    RAV_CHECK(propagation.ok());
    raw = propagation->raw_states_per_source();
    max_dfa = 0;
    int total = 0, count = 0;
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        max_dfa = std::max({max_dfa, propagation->EqualityDfa(i, j).num_states(),
                            propagation->InequalityDfa(i, j).num_states()});
        total += propagation->EqualityDfa(i, j).num_states() +
                 propagation->InequalityDfa(i, j).num_states();
        count += 2;
      }
    }
    avg_dfa = static_cast<double>(total) / count;
    benchmark::DoNotOptimize(propagation);
  }
  state.counters["k"] = k;
  state.counters["automaton_states"] = a.num_states();
  state.counters["raw_states"] = raw;
  state.counters["max_dfa_states"] = max_dfa;
  state.counters["avg_dfa_states"] = avg_dfa;
}
BENCHMARK(BM_PropagationAutomata)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({3, 3});

void BM_PropagationExample1(benchmark::State& state) {
  RegisterAutomaton a =
      MakeStateDriven(Completed(bench::MakeExample1()).value());
  for (auto _ : state) {
    auto propagation = PropagationAutomata::Build(a);
    RAV_CHECK(propagation.ok());
    benchmark::DoNotOptimize(propagation);
  }
  auto propagation = PropagationAutomata::Build(a);
  state.counters["e_eq_11_states"] = propagation->EqualityDfa(0, 0).num_states();
  state.counters["raw_states"] = propagation->raw_states_per_source();
}
BENCHMARK(BM_PropagationExample1);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E9", "Lemma 21: per-source-register propagation automata have at most ~4^k subset states and minimize to small per-pair DFAs.")
