// E23 — Compiled guard tables vs the interpreted Type walk
// (docs/compilation.md). Claim: lowering each distinct guard once into a
// flat table program and evaluating candidate valuations against it —
// batched SoA for run validation, precompiled closure ops for the window
// sweep — removes the per-evaluation class-vector allocations and
// per-position type recompilation, for an integer-factor speedup on the
// guard-dominated hot loops (run validation, witness realization, run
// sampling, closure construction). Every rung cross-checks the two
// engines and hard-fails on any semantic drift.
//
// Rung families (arg 0 = size, arg 1 = engine: 0 interpreted, 1 compiled):
//   BM_GuardTablesValidate/{len}/{engine}   ValidateEraRunPrefix
//   BM_GuardTablesRealize/{pump}/{engine}   RealizeEraWitness
//   BM_GuardTablesSample/{len}/{engine}     SampleEraRun
//   BM_GuardTablesClosure/{window}/{engine} ConstraintClosure (E17 ladder)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <random>

#include "bench_common.h"
#include "era/constraint_graph.h"
#include "era/emptiness.h"
#include "era/run_check.h"
#include "era/simulate_era.h"
#include "ra/control.h"

namespace rav {
namespace {

using compile::GuardEngine;

GuardEngine EngineOf(const benchmark::State& state) {
  return state.range(1) == 0 ? GuardEngine::kInterpreted
                             : GuardEngine::kCompiled;
}

// A valid length-`len` run of the k-register shift ring: the guards
// x_i = y_{i+1} chain values diagonally, so values[n+1][i+1] = values[n][i]
// and the head value is fresh per position.
FiniteRun MakeShiftRingRun(const RegisterAutomaton& a, size_t len) {
  const int k = a.num_registers();
  const int n_states = a.num_states();
  FiniteRun run;
  run.values.resize(len);
  run.states.resize(len);
  for (size_t n = 0; n < len; ++n) {
    run.states[n] = static_cast<StateId>(n % n_states);
    run.values[n].resize(k);
    run.values[n][0] = static_cast<DataValue>(1000 + n);
    for (int i = 1; i < k; ++i) {
      run.values[n][i] =
          n == 0 ? static_cast<DataValue>(i) : run.values[n - 1][i - 1];
    }
  }
  // Ring transitions were added first, one per state, in state order.
  for (size_t n = 0; n + 1 < len; ++n) {
    run.transition_indices.push_back(run.states[n].value());
  }
  return run;
}

// Validation: a long valid run of a 4-register shift ring, plus (at
// setup) a corrupted copy, checked through both engines — identical
// status on both paths, including the error message of the failure.
void BM_GuardTablesValidate(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  RegisterAutomaton a = bench::MakeShiftRing(4, 4);
  ExtendedAutomaton era(std::move(a));
  ControlAlphabet alphabet(era.automaton(), EngineOf(state));
  Database db(era.automaton().schema());
  FiniteRun run = MakeShiftRingRun(era.automaton(), len);
  const compile::TransitionGuardView view = alphabet.transition_guard_view();

  // Cross-check against the interpreted reference: same verdict on the
  // valid run and the same first-failure message on a corrupted one.
  {
    Status compiled_ok = ValidateEraRunPrefix(era, db, run,
                                              /*require_initial=*/true, view);
    Status interpreted_ok = ValidateEraRunPrefix(era, db, run,
                                                 /*require_initial=*/true);
    RAV_CHECK(compiled_ok.ok() && interpreted_ok.ok());
    FiniteRun broken = run;
    broken.values[len / 2][1] = 999999;  // breaks a shift equality
    Status c = ValidateEraRunPrefix(era, db, broken,
                                    /*require_initial=*/true, view);
    Status i = ValidateEraRunPrefix(era, db, broken,
                                    /*require_initial=*/true);
    RAV_CHECK(!c.ok() && !i.ok());
    RAV_CHECK(c.ToString() == i.ToString());
  }

  compile::GuardStats guard;
  for (auto _ : state) {
    Status s = ValidateEraRunPrefix(era, db, run, /*require_initial=*/true,
                                    view, &guard);
    RAV_CHECK(s.ok());
    benchmark::DoNotOptimize(s);
  }
  state.counters["len"] = static_cast<double>(len);
  state.counters["guard_evals"] = static_cast<double>(guard.evals);
  state.counters["table_bytes"] =
      static_cast<double>(alphabet.guard_table_bytes());
}
BENCHMARK(BM_GuardTablesValidate)
    ->ArgsProduct({{256, 1024, 4096}, {0, 1}})
    ->MinTime(0.5);

// Witness realization: the E22-style shift-ring search ERA is nonempty;
// realizing its ring lasso over a pumped window pays closure + database
// assembly + a full validation pass — the guard-dominated tail of every
// positive emptiness verdict.
void BM_GuardTablesRealize(benchmark::State& state) {
  const size_t pump = static_cast<size_t>(state.range(0));
  ExtendedAutomaton era =
      bench::MakeShiftRingSearchEra(4, 4, /*contradictory=*/false);
  ControlAlphabet alphabet(era.automaton(), EngineOf(state));
  const RegisterAutomaton& a = era.automaton();
  // The ring lasso s0 -> s1 -> ... -> s0, as control symbols (ring
  // transitions were added first, one per state, in state order).
  LassoWord word;
  for (int s = 0; s < a.num_states(); ++s) {
    const SymbolId symbol = alphabet.SymbolOf(
        StateId(s), a.transition(s).guard);
    RAV_CHECK(symbol.valid());
    word.cycle.push_back(symbol.value());
  }
  const size_t window = word.cycle.size() * pump;

  {
    // Cross-check: both engines realize the same witness run.
    ControlAlphabet interpreted(a, GuardEngine::kInterpreted);
    ControlAlphabet compiled(a, GuardEngine::kCompiled);
    auto w1 = RealizeEraWitness(era, interpreted, word, window);
    auto w2 = RealizeEraWitness(era, compiled, word, window);
    RAV_CHECK(w1.ok() && w2.ok());
    RAV_CHECK(w1->run.values == w2->run.values);
    RAV_CHECK(w1->run.states == w2->run.states);
  }

  for (auto _ : state) {
    auto witness = RealizeEraWitness(era, alphabet, word, window);
    RAV_CHECK(witness.ok());
    benchmark::DoNotOptimize(witness);
  }
  state.counters["window"] = static_cast<double>(window);
}
BENCHMARK(BM_GuardTablesRealize)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->MinTime(0.5);

// Run sampling: the per-attempt guard checks dominate SampleEraRun; the
// compiled path is selected the way operators select it, through the
// RAV_GUARD_TABLES escape hatch (SampleEraRun builds its own tables).
void BM_GuardTablesSample(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const bool compiled = state.range(1) != 0;
  ExtendedAutomaton era(bench::MakeShiftRing(3, 3));
  Database db(era.automaton().schema());
  if (compiled) {
    ::unsetenv("RAV_GUARD_TABLES");
  } else {
    ::setenv("RAV_GUARD_TABLES", "off", 1);
  }

  {
    // Cross-check: identical rng consumption — and therefore an identical
    // sampled run — under both engines.
    std::mt19937 rng_a(7), rng_b(7);
    ::setenv("RAV_GUARD_TABLES", "off", 1);
    auto run_a = SampleEraRun(era, db, len, rng_a);
    ::unsetenv("RAV_GUARD_TABLES");
    auto run_b = SampleEraRun(era, db, len, rng_b);
    RAV_CHECK(run_a.has_value() && run_b.has_value());
    RAV_CHECK(run_a->values == run_b->values);
    RAV_CHECK(run_a->states == run_b->states);
    if (!compiled) ::setenv("RAV_GUARD_TABLES", "off", 1);
  }

  std::mt19937 rng(42);
  for (auto _ : state) {
    auto run = SampleEraRun(era, db, len, rng);
    RAV_CHECK(run.has_value());
    benchmark::DoNotOptimize(run);
  }
  ::unsetenv("RAV_GUARD_TABLES");
  state.counters["len"] = static_cast<double>(len);
}
BENCHMARK(BM_GuardTablesSample)
    ->ArgsProduct({{64, 256}, {0, 1}})
    ->MinTime(0.5);

// Closure construction (the E17 ladder, engine-split): with compiled
// tables ApplyTypes replays each symbol's precompiled closure ops instead
// of re-walking its type per position. The shift-ring search ERA's guards
// carry k-1 equalities each, and the contradictory constraints make every
// candidate build a full window — the E22 drain shape.
void BM_GuardTablesClosure(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  ExtendedAutomaton era =
      bench::MakeShiftRingSearchEra(6, 4, /*contradictory=*/true);
  ControlAlphabet alphabet(era.automaton(), EngineOf(state));
  const RegisterAutomaton& a = era.automaton();
  LassoWord word;
  for (int s = 0; s < a.num_states(); ++s) {
    const SymbolId symbol = alphabet.SymbolOf(
        StateId(s), a.transition(s).guard);
    RAV_CHECK(symbol.valid());
    word.cycle.push_back(symbol.value());
  }

  {
    // Cross-check: identical closures from both alphabets.
    ControlAlphabet interpreted(a, GuardEngine::kInterpreted);
    ControlAlphabet compiled(a, GuardEngine::kCompiled);
    ConstraintClosure c1(era, interpreted, word, window);
    ConstraintClosure c2(era, compiled, word, window);
    RAV_CHECK(c1.consistent() == c2.consistent());
    RAV_CHECK_EQ(c1.num_classes(), c2.num_classes());
    for (int v = 0; v < c1.num_nodes(); ++v) {
      RAV_CHECK_EQ(c1.ClassOf(v), c2.ClassOf(v));
    }
    RAV_CHECK(c1.InequalityEdges() == c2.InequalityEdges());
  }

  ClosureScratch scratch;
  for (auto _ : state) {
    ConstraintClosure closure(era, alphabet, word, window, &scratch);
    benchmark::DoNotOptimize(closure);
  }
  state.counters["window"] = static_cast<double>(window);
}
BENCHMARK(BM_GuardTablesClosure)
    ->ArgsProduct({{32, 128, 512}, {0, 1}})
    ->MinTime(0.5);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E23", "Compiled guard tables: lowering each distinct guard once into a flat table program (batched SoA validation, precompiled closure ops) matches the interpreted Type walk bit-for-bit while removing per-evaluation allocations and per-position type recompilation from the hot loops.")
