// E22 — Shared-memory lasso search (concurrent visited set + state pool).
// Claim: the SControl/product enumerator delivers the same ω-word under
// many decompositions; interning candidates by canonical decomposition in
// a concurrent visited set lets every worker reuse every other worker's
// verdicts, so the shared engine builds a fraction of the partitioned
// engine's constraint closures on duplicate-rich all-reject rungs and
// finishes faster, with the visited set's pool charged to the governor's
// byte accounting. Partitioned stays the deterministic reference; both
// engines are cross-checked for verdict/stop-reason agreement in-bench.
// Counters: closures, checked, visited_hits, visited_entries, dedup_pct,
// pool_kb, peak_kb.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "era/emptiness.h"
#include "era/ltlfo.h"
#include "ra/control.h"

namespace rav {
namespace {

void AddSharedCounters(benchmark::State& state, const SearchStats& stats) {
  state.counters["closures"] = static_cast<double>(stats.closures_built);
  state.counters["checked"] = static_cast<double>(stats.lassos_checked);
  state.counters["visited_hits"] = static_cast<double>(stats.visited_hits);
  state.counters["visited_entries"] =
      static_cast<double>(stats.visited_entries);
  if (stats.lassos_checked > 0) {
    state.counters["dedup_pct"] = 100.0 *
                                  static_cast<double>(stats.visited_hits) /
                                  static_cast<double>(stats.lassos_checked);
  }
  state.counters["pool_kb"] = static_cast<double>(stats.pool_bytes) / 1024.0;
}

// The all-reject big-product rung (bench_emptiness's E17-style family):
// a contradictory shift ring whose skip transitions make the accepting-
// lasso space exponential in the length bound, so the search drains its
// whole bounded space and every duplicate decomposition pays a closure.
EraEmptinessResult RunRing(int n, size_t max_length, SearchMode mode,
                           int workers, const ExecutionGovernor* governor) {
  ExtendedAutomaton era =
      bench::MakeShiftRingSearchEra(/*k=*/3, n, /*contradictory=*/true);
  ControlAlphabet alphabet(era.automaton());
  Nba scontrol = BuildSControlNba(era.automaton(), alphabet);
  EraEmptinessOptions options;
  options.max_lasso_length = max_length;
  options.max_lassos = 100000;
  options.max_search_steps = 10000000;
  options.search_mode = mode;
  options.num_workers = workers;
  options.governor = governor;
  return SearchConsistentLasso(era, alphabet, scontrol, options);
}

// One-time cross-check per rung: the shared engine must agree with the
// partitioned reference on verdict and stop reason, answer a nontrivial
// fraction of candidates from the visited set, and build strictly fewer
// closures. RAV_CHECK so a regression fails the bench run (and CI).
void CheckRung(int n, size_t max_length) {
  EraEmptinessResult partitioned =
      RunRing(n, max_length, SearchMode::kPartitioned, 1, nullptr);
  EraEmptinessResult shared =
      RunRing(n, max_length, SearchMode::kSharedVisited, 1, nullptr);
  RAV_CHECK(partitioned.nonempty == shared.nonempty);
  RAV_CHECK(partitioned.stats.stop_reason == shared.stats.stop_reason);
  RAV_CHECK_GT(shared.stats.visited_hits, 0u);
  RAV_CHECK_LT(shared.stats.closures_built, partitioned.stats.closures_built);
}

void RunRingBench(benchmark::State& state, SearchMode mode) {
  const int n = static_cast<int>(state.range(0));
  const size_t max_length = static_cast<size_t>(state.range(1));
  const int workers = static_cast<int>(state.range(2));
  static bool checked_6_10 = (CheckRung(6, 10), true);
  (void)checked_6_10;
  EraEmptinessResult last;
  size_t peak_bytes = 0;
  for (auto _ : state) {
    // A fresh unlimited governor per run records the search's own
    // high-water mark (closures + visited set) in peak_bytes().
    ExecutionGovernor governor;
    last = RunRing(n, max_length, mode, workers, &governor);
    peak_bytes = governor.peak_bytes();
    benchmark::DoNotOptimize(last);
  }
  state.counters["ring"] = static_cast<double>(n);
  state.counters["max_len"] = static_cast<double>(max_length);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["peak_kb"] = static_cast<double>(peak_bytes) / 1024.0;
  AddSharedCounters(state, last.stats);
}

void BM_RingPartitioned(benchmark::State& state) {
  RunRingBench(state, SearchMode::kPartitioned);
}
// MinTime keeps the engine-vs-engine ratios stable: these rungs feed the
// E22 speedup claim and the perf gate.
BENCHMARK(BM_RingPartitioned)
    ->ArgsProduct({{4, 6}, {10, 12}, {1, 4}})
    ->MinTime(0.3);

void BM_RingShared(benchmark::State& state) {
  RunRingBench(state, SearchMode::kSharedVisited);
}
BENCHMARK(BM_RingShared)
    ->ArgsProduct({{4, 6}, {10, 12}, {1, 4}})
    ->MinTime(0.3);

// The LTL-FO rung: a HOLDS verification drains the ¬φ-NBA × SControl
// product's entire bounded lasso space — the big-product workload the
// shared visited-set was built for. The mode flows through
// VerificationOptions.emptiness untouched.
void RunLtlBench(benchmark::State& state, SearchMode mode) {
  const int depth = static_cast<int>(state.range(0));
  ExtendedAutomaton era =
      bench::MakeShiftRingSearchEra(/*k=*/3, /*n=*/4, /*contradictory=*/true);
  LtlFoProperty prop;
  prop.propositions = {Formula::Eq(Term::Var(0), Term::Var(3))};  // x1 = y2
  LtlFormula f = LtlFormula::Ap(0);
  for (int i = 0; i < depth; ++i) {
    f = LtlFormula::Globally(LtlFormula::Eventually(std::move(f)));
  }
  prop.formula = std::move(f);
  VerificationOptions options;
  options.emptiness.max_lasso_length = 10;
  options.emptiness.search_mode = mode;
  VerificationResult last;
  for (auto _ : state) {
    auto result = VerifyLtlFo(era, prop, options);
    RAV_CHECK(result.ok());
    last = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["product_states"] =
      static_cast<double>(last.product_states);
  state.counters["holds"] = last.holds;
  AddSharedCounters(state, last.search_stats);
}

void BM_LtlProductPartitioned(benchmark::State& state) {
  RunLtlBench(state, SearchMode::kPartitioned);
}
BENCHMARK(BM_LtlProductPartitioned)->DenseRange(1, 2)->MinTime(0.3);

void BM_LtlProductShared(benchmark::State& state) {
  RunLtlBench(state, SearchMode::kSharedVisited);
}
BENCHMARK(BM_LtlProductShared)->DenseRange(1, 2)->MinTime(0.3);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT(
    "E22",
    "Shared-memory lasso search: interning candidates by canonical ω-word "
    "in a concurrent, governor-accounted visited set dedups duplicate "
    "decompositions across workers, building a fraction of the partitioned "
    "engine's closures on all-reject big-product rungs and finishing "
    "faster, while the partitioned reference keeps first-witness-by-rank "
    "determinism as the default.")
