// E16 (ablation) — equality-guided successor sampling in the simulator.
// Design choice: SampleRun copies ȳ registers whose class is anchored to
// an x̄ register or constant instead of sampling all k values blindly.
// This ablation compares success rates on a keeps-heavy workflow (the
// common shape: most attributes propagate, one changes under a database
// lookup) by shrinking the attempt budget until blind sampling fails.

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <random>

#include "ra/simulate.h"
#include "workflow/builder.h"

namespace rav {
namespace {

RegisterAutomaton MakeKeepsHeavyWorkflow(int attributes) {
  Schema schema;
  schema.AddRelation("Ok", 1);
  WorkflowBuilder wf(schema);
  for (int i = 0; i < attributes; ++i) {
    wf.AddAttribute("a" + std::to_string(i));
  }
  wf.AddStage("s", /*initial=*/true, /*accepting=*/true);
  auto guard = wf.NewGuard();
  guard.KeepsAllExcept({"a0"});
  guard.Holds("Ok", {"a0+"});
  RAV_CHECK(guard.ConnectTransition("s", "s").ok());
  return wf.Build().value();
}

void BM_GuidedSampling(benchmark::State& state) {
  const int attributes = static_cast<int>(state.range(0));
  RegisterAutomaton a = MakeKeepsHeavyWorkflow(attributes);
  Database db(a.schema());
  db.Insert(0, {1});
  db.Insert(0, {2});
  std::mt19937 rng(99);
  SimulateOptions options;
  options.assignment_attempts = 16;  // tight budget: guided still succeeds
  size_t successes = 0, trials = 0;
  for (auto _ : state) {
    ++trials;
    auto run = SampleRun(a, db, 12, rng, options);
    successes += run.has_value();
    benchmark::DoNotOptimize(run);
  }
  state.counters["attributes"] = attributes;
  state.counters["success_rate"] =
      trials == 0 ? 0 : static_cast<double>(successes) / trials;
  // Blind sampling would succeed per step with probability
  // (1/pool)^(k-1) · (adom_hits/pool): astronomically small for k >= 4.
  // The guided sampler's per-step success is adom_hits/pool regardless
  // of k; success_rate ≈ 1.0 across the sweep demonstrates it.
}
BENCHMARK(BM_GuidedSampling)->DenseRange(2, 8, 2);

}  // namespace
}  // namespace rav

RAV_BENCH_EXPERIMENT("E16", "Ablation: guided successor sampling keeps the per-step success rate near 1.0 where blind sampling degrades as (1/pool)^(k-1).")
