
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/automata_test.cc" "tests/CMakeFiles/automata_test.dir/automata_test.cc.o" "gcc" "tests/CMakeFiles/automata_test.dir/automata_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/io/CMakeFiles/rav_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workflow/CMakeFiles/rav_workflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/enhanced/CMakeFiles/rav_enhanced.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/projection/CMakeFiles/rav_projection.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/era/CMakeFiles/rav_era.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ltl/CMakeFiles/rav_ltl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ra/CMakeFiles/rav_ra.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/types/CMakeFiles/rav_types.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relational/CMakeFiles/rav_relational.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/automata/CMakeFiles/rav_automata.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/base/CMakeFiles/rav_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
