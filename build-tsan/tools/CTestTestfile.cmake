# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rav_cli_bad_project_arg "/root/repo/build-tsan/tools/rav_cli" "project" "nonexistent.rav" "12x")
set_tests_properties(rav_cli_bad_project_arg PROPERTIES  PASS_REGULAR_EXPRESSION "expected a decimal integer" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(rav_cli_bad_simulate_arg "/root/repo/build-tsan/tools/rav_cli" "simulate" "nonexistent.rav" "notanumber")
set_tests_properties(rav_cli_bad_simulate_arg PROPERTIES  PASS_REGULAR_EXPRESSION "expected a decimal integer" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(rav_cli_bad_threads_arg "/root/repo/build-tsan/tools/rav_cli" "empty" "nonexistent.rav" "--threads" "9999999999999")
set_tests_properties(rav_cli_bad_threads_arg PROPERTIES  PASS_REGULAR_EXPRESSION "expected a decimal integer" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(rav_cli_negative_threads_arg "/root/repo/build-tsan/tools/rav_cli" "empty" "nonexistent.rav" "--threads" "-1")
set_tests_properties(rav_cli_negative_threads_arg PROPERTIES  PASS_REGULAR_EXPRESSION "--threads must be >= 0" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
