
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ltl/ltl.cc" "src/ltl/CMakeFiles/rav_ltl.dir/ltl.cc.o" "gcc" "src/ltl/CMakeFiles/rav_ltl.dir/ltl.cc.o.d"
  "/root/repo/src/ltl/tableau.cc" "src/ltl/CMakeFiles/rav_ltl.dir/tableau.cc.o" "gcc" "src/ltl/CMakeFiles/rav_ltl.dir/tableau.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/base/CMakeFiles/rav_base.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/automata/CMakeFiles/rav_automata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
