
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/era/constraint_graph.cc" "src/era/CMakeFiles/rav_era.dir/constraint_graph.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/constraint_graph.cc.o.d"
  "/root/repo/src/era/emptiness.cc" "src/era/CMakeFiles/rav_era.dir/emptiness.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/emptiness.cc.o.d"
  "/root/repo/src/era/extended_automaton.cc" "src/era/CMakeFiles/rav_era.dir/extended_automaton.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/extended_automaton.cc.o.d"
  "/root/repo/src/era/ltlfo.cc" "src/era/CMakeFiles/rav_era.dir/ltlfo.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/ltlfo.cc.o.d"
  "/root/repo/src/era/parallel_search.cc" "src/era/CMakeFiles/rav_era.dir/parallel_search.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/parallel_search.cc.o.d"
  "/root/repo/src/era/prop6.cc" "src/era/CMakeFiles/rav_era.dir/prop6.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/prop6.cc.o.d"
  "/root/repo/src/era/quasi_regular.cc" "src/era/CMakeFiles/rav_era.dir/quasi_regular.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/quasi_regular.cc.o.d"
  "/root/repo/src/era/run_check.cc" "src/era/CMakeFiles/rav_era.dir/run_check.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/run_check.cc.o.d"
  "/root/repo/src/era/simulate_era.cc" "src/era/CMakeFiles/rav_era.dir/simulate_era.cc.o" "gcc" "src/era/CMakeFiles/rav_era.dir/simulate_era.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ra/CMakeFiles/rav_ra.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ltl/CMakeFiles/rav_ltl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/types/CMakeFiles/rav_types.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relational/CMakeFiles/rav_relational.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/automata/CMakeFiles/rav_automata.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/base/CMakeFiles/rav_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
