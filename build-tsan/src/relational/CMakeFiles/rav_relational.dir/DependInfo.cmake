
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/database.cc" "src/relational/CMakeFiles/rav_relational.dir/database.cc.o" "gcc" "src/relational/CMakeFiles/rav_relational.dir/database.cc.o.d"
  "/root/repo/src/relational/formula.cc" "src/relational/CMakeFiles/rav_relational.dir/formula.cc.o" "gcc" "src/relational/CMakeFiles/rav_relational.dir/formula.cc.o.d"
  "/root/repo/src/relational/query.cc" "src/relational/CMakeFiles/rav_relational.dir/query.cc.o" "gcc" "src/relational/CMakeFiles/rav_relational.dir/query.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/rav_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/rav_relational.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/base/CMakeFiles/rav_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
