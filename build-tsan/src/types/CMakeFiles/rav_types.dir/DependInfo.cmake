
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/completion.cc" "src/types/CMakeFiles/rav_types.dir/completion.cc.o" "gcc" "src/types/CMakeFiles/rav_types.dir/completion.cc.o.d"
  "/root/repo/src/types/type.cc" "src/types/CMakeFiles/rav_types.dir/type.cc.o" "gcc" "src/types/CMakeFiles/rav_types.dir/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/base/CMakeFiles/rav_base.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relational/CMakeFiles/rav_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
